#include "linalg/blas.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "parallel/thread_pool.h"

namespace ls3df {

namespace {

template <typename T>
struct IsComplex : std::false_type {};
template <typename R>
struct IsComplex<std::complex<R>> : std::true_type {};

template <typename T>
T apply_op(Op op, const Matrix<T>& A, int i, int j) {
  switch (op) {
    case Op::kNone:
      return A(i, j);
    case Op::kTrans:
      return A(j, i);
    case Op::kConjTrans:
      if constexpr (IsComplex<T>::value)
        return std::conj(A(j, i));
      else
        return A(j, i);
  }
  return T{};
}

// Rows of A/B processed per cache block in the A^H B kernel: two A
// columns + two B columns of 256 complex values are 16 KiB, comfortably
// inside L1, so the 2x2 tile streams from cache while the accumulators
// stay in registers.
constexpr int kKBlock = 256;

// Blocked overlap kernel: C(:, j0:j1) += alpha * A^H B(:, j0:j1) with A
// (ka x m), B (ka x n), both column-major. 2x2 register tiles over (i, j),
// k-blocked so the four active columns stay L1-resident. Complex
// arithmetic is expanded into real/imaginary parts so the compiler can
// vectorize the inner loop. The column range exists for gemm_batched's
// tile grid; j0 must be even (relative to column 0) so the 2-column
// pairing — and therefore the exact floating-point expression used for
// each C element — matches the full-range sweep. Templated over the real
// type: <double> is the reference path, <float> the mixed-precision fast
// path (accumulators stay in the element type, which is where the fp32
// SIMD-width win comes from).
template <typename R>
void gemm_conjtrans_none_blocked(std::complex<R> alpha,
                                 const Matrix<std::complex<R>>& A,
                                 const Matrix<std::complex<R>>& B,
                                 Matrix<std::complex<R>>& C, int j0, int j1) {
  using cd = std::complex<R>;
  const int ka = A.rows(), m = C.rows();
  const int n = j1;
  for (int kk = 0; kk < ka; kk += kKBlock) {
    const int ke = std::min(ka, kk + kKBlock);
    int j = j0;
    for (; j + 1 < n; j += 2) {
      const cd* b0 = B.col(j);
      const cd* b1 = B.col(j + 1);
      int i = 0;
      for (; i + 1 < m; i += 2) {
        const cd* a0 = A.col(i);
        const cd* a1 = A.col(i + 1);
        R r00 = 0, s00 = 0, r01 = 0, s01 = 0;
        R r10 = 0, s10 = 0, r11 = 0, s11 = 0;
        for (int l = kk; l < ke; ++l) {
          const R ar0 = a0[l].real(), ai0 = a0[l].imag();
          const R ar1 = a1[l].real(), ai1 = a1[l].imag();
          const R br0 = b0[l].real(), bi0 = b0[l].imag();
          const R br1 = b1[l].real(), bi1 = b1[l].imag();
          // conj(a) * b = (ar*br + ai*bi) + i (ar*bi - ai*br)
          r00 += ar0 * br0 + ai0 * bi0;
          s00 += ar0 * bi0 - ai0 * br0;
          r01 += ar0 * br1 + ai0 * bi1;
          s01 += ar0 * bi1 - ai0 * br1;
          r10 += ar1 * br0 + ai1 * bi0;
          s10 += ar1 * bi0 - ai1 * br0;
          r11 += ar1 * br1 + ai1 * bi1;
          s11 += ar1 * bi1 - ai1 * br1;
        }
        C(i, j) += alpha * cd(r00, s00);
        C(i, j + 1) += alpha * cd(r01, s01);
        C(i + 1, j) += alpha * cd(r10, s10);
        C(i + 1, j + 1) += alpha * cd(r11, s11);
      }
      for (; i < m; ++i) {
        const cd* ai = A.col(i);
        cd acc0{}, acc1{};
        for (int l = kk; l < ke; ++l) {
          acc0 += std::conj(ai[l]) * b0[l];
          acc1 += std::conj(ai[l]) * b1[l];
        }
        C(i, j) += alpha * acc0;
        C(i, j + 1) += alpha * acc1;
      }
    }
    for (; j < n; ++j) {
      const cd* bj = B.col(j);
      for (int i = 0; i < m; ++i) {
        const cd* ai = A.col(i);
        cd acc{};
        for (int l = kk; l < ke; ++l) acc += std::conj(ai[l]) * bj[l];
        C(i, j) += alpha * acc;
      }
    }
  }
}

// Blocked gaxpy kernel: C(:, j0:j1) += alpha * A B(:, j0:j1) with A
// (m x k), B (k x n). Four C columns advance per sweep of A, quartering
// the dominant A traffic of the plain column-at-a-time gaxpy for the
// tall-skinny shapes PEtot_F produces. j0 must be a multiple of 4 so the
// 4-column grouping matches the full-range sweep (see gemm_batched).
template <typename R>
void gemm_none_none_blocked(std::complex<R> alpha,
                            const Matrix<std::complex<R>>& A,
                            const Matrix<std::complex<R>>& B,
                            Matrix<std::complex<R>>& C, int j0, int j1) {
  using cd = std::complex<R>;
  const int m = C.rows(), k = A.cols();
  const int n = j1;
  int j = j0;
  for (; j + 3 < n; j += 4) {
    cd* c0 = C.col(j);
    cd* c1 = C.col(j + 1);
    cd* c2 = C.col(j + 2);
    cd* c3 = C.col(j + 3);
    for (int l = 0; l < k; ++l) {
      const cd b0 = alpha * B(l, j);
      const cd b1 = alpha * B(l, j + 1);
      const cd b2 = alpha * B(l, j + 2);
      const cd b3 = alpha * B(l, j + 3);
      const cd* al = A.col(l);
      const R br0 = b0.real(), bi0 = b0.imag();
      const R br1 = b1.real(), bi1 = b1.imag();
      const R br2 = b2.real(), bi2 = b2.imag();
      const R br3 = b3.real(), bi3 = b3.imag();
      for (int i = 0; i < m; ++i) {
        const R ar = al[i].real(), ai = al[i].imag();
        c0[i] += cd(ar * br0 - ai * bi0, ar * bi0 + ai * br0);
        c1[i] += cd(ar * br1 - ai * bi1, ar * bi1 + ai * br1);
        c2[i] += cd(ar * br2 - ai * bi2, ar * bi2 + ai * br2);
        c3[i] += cd(ar * br3 - ai * bi3, ar * bi3 + ai * br3);
      }
    }
  }
  for (; j < n; ++j) {
    cd* cj = C.col(j);
    for (int l = 0; l < k; ++l) {
      const cd b = alpha * B(l, j);
      if (b == cd{}) continue;
      const cd* al = A.col(l);
      for (int i = 0; i < m; ++i) cj[i] += al[i] * b;
    }
  }
}

template <typename T>
void gemm_impl(Op opA, Op opB, T alpha, const Matrix<T>& A,
               const Matrix<T>& B, T beta, Matrix<T>& C) {
  const int m = C.rows(), n = C.cols();
  const int k = (opA == Op::kNone) ? A.cols() : A.rows();
  assert(((opA == Op::kNone) ? A.rows() : A.cols()) == m);
  assert(((opB == Op::kNone) ? B.rows() : B.cols()) == k);
  assert(((opB == Op::kNone) ? B.cols() : B.rows()) == n);

  if (beta == T{}) {
    C.set_zero();
  } else if (beta != T{1}) {
    for (std::size_t i = 0; i < C.size(); ++i) C.data()[i] *= beta;
  }

  if constexpr (IsComplex<T>::value) {
    if (opA == Op::kNone && opB == Op::kNone) {
      gemm_none_none_blocked(alpha, A, B, C, 0, n);
      return;
    }
    if (opA == Op::kConjTrans && opB == Op::kNone) {
      gemm_conjtrans_none_blocked(alpha, A, B, C, 0, n);
      return;
    }
  } else {
    if (opA == Op::kNone && opB == Op::kNone) {
      // Fast path: gaxpy ordering, stride-1 over columns of A and C.
      for (int j = 0; j < n; ++j) {
        T* cj = C.col(j);
        for (int l = 0; l < k; ++l) {
          const T b = alpha * B(l, j);
          if (b == T{}) continue;
          const T* al = A.col(l);
          for (int i = 0; i < m; ++i) cj[i] += al[i] * b;
        }
      }
      return;
    }
  }
  // General (rare) path.
  for (int j = 0; j < n; ++j)
    for (int l = 0; l < k; ++l) {
      const T b = alpha * apply_op(opB, B, l, j);
      if (b == T{}) continue;
      for (int i = 0; i < m; ++i) C(i, j) += apply_op(opA, A, i, l) * b;
    }
}

// Columns of C per batched work unit. A multiple of both register-tile
// widths (2 for the conj-trans kernel, 4 for the gaxpy kernel), so every
// tile's column pairing starts exactly where the full-range sweep would
// put it and the batched arithmetic is element-for-element identical to
// serial gemm().
constexpr int kBatchTileCols = 32;

// General op fallback restricted to a column range (rare in the batched
// path; kept for completeness).
template <typename R>
void gemm_general_range(Op opA, Op opB, std::complex<R> alpha,
                        const Matrix<std::complex<R>>& A,
                        const Matrix<std::complex<R>>& B,
                        Matrix<std::complex<R>>& C, int j0, int j1) {
  using cd = std::complex<R>;
  const int m = C.rows();
  const int k = (opA == Op::kNone) ? A.cols() : A.rows();
  for (int j = j0; j < j1; ++j)
    for (int l = 0; l < k; ++l) {
      const cd b = alpha * apply_op(opB, B, l, j);
      if (b == cd{}) continue;
      for (int i = 0; i < m; ++i) C(i, j) += apply_op(opA, A, i, l) * b;
    }
}

// Shared batched body: the item type carries the element precision
// (GemmBatchItem = double, GemmBatchItemF = float); the tile grid,
// alignment rules and per-tile beta handling are identical, so both
// precisions inherit the same bit-identity-to-serial-gemm argument.
template <typename R, typename Item>
void gemm_batched_impl(Op opA, Op opB, std::complex<R> alpha,
                       const std::vector<Item>& items, std::complex<R> beta,
                       int n_workers) {
  using cd = std::complex<R>;
  using Mat = Matrix<cd>;
  if (items.empty()) return;

  // Flatten the batch into (member, column tile) work units. The unit
  // count depends only on the item shapes — never on n_workers — and each
  // C element is written by exactly one unit, so scheduling cannot change
  // any value.
  struct Unit {
    int item;
    int j0, j1;
  };
  std::vector<Unit> units;
  for (int t = 0; t < static_cast<int>(items.size()); ++t) {
    const Item& it = items[t];
    assert(it.a && it.b && it.c);
    const Mat& A = *it.a;
    const Mat& B = *it.b;
    Mat& C = *it.c;
    const int m = C.rows(), n = C.cols();
    const int k = (opA == Op::kNone) ? A.cols() : A.rows();
    assert(((opA == Op::kNone) ? A.rows() : A.cols()) == m);
    assert(((opB == Op::kNone) ? B.rows() : B.cols()) == k);
    assert(((opB == Op::kNone) ? B.cols() : B.rows()) == n);
    (void)A;
    (void)B;
    (void)m;
    (void)k;
    for (int j0 = 0; j0 < n; j0 += kBatchTileCols)
      units.push_back({t, j0, std::min(n, j0 + kBatchTileCols)});
  }

  const auto run_unit = [&](const Unit& u) {
    const Item& it = items[u.item];
    Mat& C = *it.c;
    // Per-tile beta handling mirrors gemm_impl's whole-matrix pass.
    if (beta == cd{}) {
      for (int j = u.j0; j < u.j1; ++j)
        std::fill(C.col(j), C.col(j) + C.rows(), cd{});
    } else if (beta != cd{1}) {
      for (int j = u.j0; j < u.j1; ++j) {
        cd* cj = C.col(j);
        for (int i = 0; i < C.rows(); ++i) cj[i] *= beta;
      }
    }
    if (u.j0 == u.j1) return;
    if (opA == Op::kNone && opB == Op::kNone) {
      gemm_none_none_blocked(alpha, *it.a, *it.b, C, u.j0, u.j1);
    } else if (opA == Op::kConjTrans && opB == Op::kNone) {
      gemm_conjtrans_none_blocked(alpha, *it.a, *it.b, C, u.j0, u.j1);
    } else {
      gemm_general_range(opA, opB, alpha, *it.a, *it.b, C, u.j0, u.j1);
    }
  };

  const int n_units = static_cast<int>(units.size());
  if (n_workers <= 1 || n_units <= 1) {
    for (const Unit& u : units) run_unit(u);
  } else {
    parallel_for(n_units, n_workers,
                 [&](int u, int /*worker*/) { run_unit(units[u]); });
  }
}

}  // namespace

void gemm(Op opA, Op opB, std::complex<double> alpha, const MatC& A,
          const MatC& B, std::complex<double> beta, MatC& C) {
  gemm_impl(opA, opB, alpha, A, B, beta, C);
}

void gemm(Op opA, Op opB, double alpha, const MatR& A, const MatR& B,
          double beta, MatR& C) {
  gemm_impl(opA, opB, alpha, A, B, beta, C);
}

void gemm(Op opA, Op opB, std::complex<float> alpha, const MatCF& A,
          const MatCF& B, std::complex<float> beta, MatCF& C) {
  gemm_impl(opA, opB, alpha, A, B, beta, C);
}

void gemm_batched(Op opA, Op opB, std::complex<double> alpha,
                  const std::vector<GemmBatchItem>& items,
                  std::complex<double> beta, int n_workers) {
  gemm_batched_impl<double>(opA, opB, alpha, items, beta, n_workers);
}

void gemm_batched(Op opA, Op opB, std::complex<float> alpha,
                  const std::vector<GemmBatchItemF>& items,
                  std::complex<float> beta, int n_workers) {
  gemm_batched_impl<float>(opA, opB, alpha, items, beta, n_workers);
}

void gemv(Op opA, std::complex<double> alpha, const MatC& A,
          const std::complex<double>* x, std::complex<double> beta,
          std::complex<double>* y) {
  const int m = A.rows(), n = A.cols();
  if (opA == Op::kNone) {
    for (int i = 0; i < m; ++i) y[i] *= beta;
    for (int j = 0; j < n; ++j) {
      const std::complex<double> xj = alpha * x[j];
      const std::complex<double>* aj = A.col(j);
      for (int i = 0; i < m; ++i) y[i] += aj[i] * xj;
    }
  } else {
    assert(opA == Op::kConjTrans);
    for (int j = 0; j < n; ++j) {
      const std::complex<double>* aj = A.col(j);
      std::complex<double> acc{};
      for (int i = 0; i < m; ++i) acc += std::conj(aj[i]) * x[i];
      y[j] = beta * y[j] + alpha * acc;
    }
  }
}

MatC overlap(const MatC& A, const MatC& B) {
  MatC S(A.cols(), B.cols());
  gemm(Op::kConjTrans, Op::kNone, std::complex<double>(1.0), A, B,
       std::complex<double>(0.0), S);
  return S;
}

std::complex<double> zdotc(int n, const std::complex<double>* x,
                           const std::complex<double>* y) {
  std::complex<double> acc{};
  for (int i = 0; i < n; ++i) acc += std::conj(x[i]) * y[i];
  return acc;
}

double dznrm2(int n, const std::complex<double>* x) {
  double acc = 0;
  for (int i = 0; i < n; ++i) acc += std::norm(x[i]);
  return std::sqrt(acc);
}

void zaxpy(int n, std::complex<double> a, const std::complex<double>* x,
           std::complex<double>* y) {
  for (int i = 0; i < n; ++i) y[i] += a * x[i];
}

void zscal(int n, std::complex<double> a, std::complex<double>* x) {
  for (int i = 0; i < n; ++i) x[i] *= a;
}

std::complex<float> cdotc(int n, const std::complex<float>* x,
                          const std::complex<float>* y) {
  // Accumulate in double, round once (see blas.h).
  std::complex<double> acc{};
  for (int i = 0; i < n; ++i)
    acc += std::conj(std::complex<double>(x[i])) * std::complex<double>(y[i]);
  return std::complex<float>(acc);
}

float scnrm2(int n, const std::complex<float>* x) {
  double acc = 0;
  for (int i = 0; i < n; ++i) acc += std::norm(std::complex<double>(x[i]));
  return static_cast<float>(std::sqrt(acc));
}

void caxpy(int n, std::complex<float> a, const std::complex<float>* x,
           std::complex<float>* y) {
  for (int i = 0; i < n; ++i) y[i] += a * x[i];
}

void cscal(int n, std::complex<float> a, std::complex<float>* x) {
  for (int i = 0; i < n; ++i) x[i] *= a;
}

}  // namespace ls3df
