#include "linalg/blas.h"

#include <cassert>
#include <cmath>

namespace ls3df {

namespace {

template <typename T>
T apply_op(Op op, const Matrix<T>& A, int i, int j) {
  switch (op) {
    case Op::kNone:
      return A(i, j);
    case Op::kTrans:
      return A(j, i);
    case Op::kConjTrans:
      if constexpr (std::is_same_v<T, std::complex<double>>)
        return std::conj(A(j, i));
      else
        return A(j, i);
  }
  return T{};
}

template <typename T>
void gemm_impl(Op opA, Op opB, T alpha, const Matrix<T>& A,
               const Matrix<T>& B, T beta, Matrix<T>& C) {
  const int m = C.rows(), n = C.cols();
  const int k = (opA == Op::kNone) ? A.cols() : A.rows();
  assert(((opA == Op::kNone) ? A.rows() : A.cols()) == m);
  assert(((opB == Op::kNone) ? B.rows() : B.cols()) == k);
  assert(((opB == Op::kNone) ? B.cols() : B.rows()) == n);

  if (beta == T{}) {
    C.set_zero();
  } else if (beta != T{1}) {
    for (std::size_t i = 0; i < C.size(); ++i) C.data()[i] *= beta;
  }

  if (opA == Op::kNone && opB == Op::kNone) {
    // Fast path: gaxpy ordering, stride-1 over columns of A and C.
    for (int j = 0; j < n; ++j) {
      T* cj = C.col(j);
      for (int l = 0; l < k; ++l) {
        const T b = alpha * B(l, j);
        if (b == T{}) continue;
        const T* al = A.col(l);
        for (int i = 0; i < m; ++i) cj[i] += al[i] * b;
      }
    }
    return;
  }
  if (opA == Op::kConjTrans && opB == Op::kNone) {
    // Overlap path: C(i,j) = sum_l conj(A(l,i)) B(l,j); columns contiguous.
    const int ka = A.rows();
    for (int j = 0; j < n; ++j) {
      const T* bj = B.col(j);
      for (int i = 0; i < m; ++i) {
        const T* ai = A.col(i);
        T acc{};
        if constexpr (std::is_same_v<T, std::complex<double>>) {
          for (int l = 0; l < ka; ++l) acc += std::conj(ai[l]) * bj[l];
        } else {
          for (int l = 0; l < ka; ++l) acc += ai[l] * bj[l];
        }
        C(i, j) += alpha * acc;
      }
    }
    return;
  }
  // General (rare) path.
  for (int j = 0; j < n; ++j)
    for (int l = 0; l < k; ++l) {
      const T b = alpha * apply_op(opB, B, l, j);
      if (b == T{}) continue;
      for (int i = 0; i < m; ++i) C(i, j) += apply_op(opA, A, i, l) * b;
    }
}

}  // namespace

void gemm(Op opA, Op opB, std::complex<double> alpha, const MatC& A,
          const MatC& B, std::complex<double> beta, MatC& C) {
  gemm_impl(opA, opB, alpha, A, B, beta, C);
}

void gemm(Op opA, Op opB, double alpha, const MatR& A, const MatR& B,
          double beta, MatR& C) {
  gemm_impl(opA, opB, alpha, A, B, beta, C);
}

void gemv(Op opA, std::complex<double> alpha, const MatC& A,
          const std::complex<double>* x, std::complex<double> beta,
          std::complex<double>* y) {
  const int m = A.rows(), n = A.cols();
  if (opA == Op::kNone) {
    for (int i = 0; i < m; ++i) y[i] *= beta;
    for (int j = 0; j < n; ++j) {
      const std::complex<double> xj = alpha * x[j];
      const std::complex<double>* aj = A.col(j);
      for (int i = 0; i < m; ++i) y[i] += aj[i] * xj;
    }
  } else {
    assert(opA == Op::kConjTrans);
    for (int j = 0; j < n; ++j) {
      const std::complex<double>* aj = A.col(j);
      std::complex<double> acc{};
      for (int i = 0; i < m; ++i) acc += std::conj(aj[i]) * x[i];
      y[j] = beta * y[j] + alpha * acc;
    }
  }
}

MatC overlap(const MatC& A, const MatC& B) {
  MatC S(A.cols(), B.cols());
  gemm(Op::kConjTrans, Op::kNone, std::complex<double>(1.0), A, B,
       std::complex<double>(0.0), S);
  return S;
}

std::complex<double> zdotc(int n, const std::complex<double>* x,
                           const std::complex<double>* y) {
  std::complex<double> acc{};
  for (int i = 0; i < n; ++i) acc += std::conj(x[i]) * y[i];
  return acc;
}

double dznrm2(int n, const std::complex<double>* x) {
  double acc = 0;
  for (int i = 0; i < n; ++i) acc += std::norm(x[i]);
  return std::sqrt(acc);
}

void zaxpy(int n, std::complex<double> a, const std::complex<double>* x,
           std::complex<double>* y) {
  for (int i = 0; i < n; ++i) y[i] += a * x[i];
}

void zscal(int n, std::complex<double> a, std::complex<double>* x) {
  for (int i = 0; i < n; ++i) x[i] *= a;
}

}  // namespace ls3df
