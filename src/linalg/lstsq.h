// Linear and nonlinear least squares. The nonlinear (Levenberg-Marquardt)
// fitter is what the paper uses implicitly when it least-squares-fits
// Amdahl's law (Ps, alpha) to the strong-scaling measurements in Sec. VI.
#pragma once

#include <functional>
#include <vector>

#include "linalg/matrix.h"

namespace ls3df {

// Minimize ||A x - b||_2 via the normal equations (A: m x n, m >= n).
std::vector<double> lstsq(const MatR& A, const std::vector<double>& b);

struct FitResult {
  std::vector<double> params;
  double rms_residual = 0.0;        // sqrt(mean squared residual)
  double mean_abs_rel_dev = 0.0;    // mean |model/data - 1| (paper's metric)
  int iterations = 0;
  bool converged = false;
};

// Levenberg-Marquardt with numeric (forward-difference) Jacobian.
// model(params, x) -> predicted y. Fits params to (xs, ys).
FitResult fit_levenberg_marquardt(
    const std::function<double(const std::vector<double>&, double)>& model,
    const std::vector<double>& xs, const std::vector<double>& ys,
    std::vector<double> initial_params, int max_iterations = 200,
    double tol = 1e-12);

}  // namespace ls3df
