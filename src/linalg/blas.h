// Minimal BLAS-like kernels built from scratch: matrix-matrix products
// (the BLAS-3 path that Sec. IV's all-band optimization relies on),
// matrix-vector products (the BLAS-2 path of the original band-by-band
// scheme), the strided-batched product the fragment batching engine fuses
// same-class solves with, and the level-1 helpers the CG solvers need.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.h"

namespace ls3df {

enum class Op { kNone, kTrans, kConjTrans };

// C = alpha * op(A) * op(B) + beta * C.
void gemm(Op opA, Op opB, std::complex<double> alpha, const MatC& A,
          const MatC& B, std::complex<double> beta, MatC& C);
void gemm(Op opA, Op opB, double alpha, const MatR& A, const MatR& B,
          double beta, MatR& C);
// Single-precision instantiation of the same blocked kernels (the
// register-tiled cores are templated over the real type), used by the
// mixed-precision Davidson fast path. Roughly 2x the SIMD width of the
// double path on the same shapes.
void gemm(Op opA, Op opB, std::complex<float> alpha, const MatCF& A,
          const MatCF& B, std::complex<float> beta, MatCF& C);

// One member of a batched product: C = alpha * op(A) * op(B) + beta * C.
// Shapes may differ between members (same-class fragment batches share
// them, but the nonlocal path has per-fragment projector counts).
struct GemmBatchItem {
  const MatC* a = nullptr;
  const MatC* b = nullptr;
  MatC* c = nullptr;
};

// Single-precision batch member (the fp32 Davidson stack).
struct GemmBatchItemF {
  const MatCF* a = nullptr;
  const MatCF* b = nullptr;
  MatCF* c = nullptr;
};

// Batched GEMM: every item's product, fused into one sweep over a grid of
// (member, column-tile) work units executed via parallel_for on the shared
// pool. Tiles are aligned to the register-blocking width of the serial
// kernels, so each C element is produced by exactly the arithmetic gemm()
// would use — a batched call is bit-identical to the member-by-member
// loop for any n_workers, which is what lets the batched fragment solver
// promise per-fragment reproducibility. n_workers <= 1 runs inline.
void gemm_batched(Op opA, Op opB, std::complex<double> alpha,
                  const std::vector<GemmBatchItem>& items,
                  std::complex<double> beta, int n_workers = 1);
void gemm_batched(Op opA, Op opB, std::complex<float> alpha,
                  const std::vector<GemmBatchItemF>& items,
                  std::complex<float> beta, int n_workers = 1);

// y = alpha * op(A) * x + beta * y (BLAS-2).
void gemv(Op opA, std::complex<double> alpha, const MatC& A,
          const std::complex<double>* x, std::complex<double> beta,
          std::complex<double>* y);

// Hermitian overlap S = A^H * B restricted to (A.cols x B.cols).
// Convenience wrapper over gemm used for all-band orthogonalization.
MatC overlap(const MatC& A, const MatC& B);

// Level-1 helpers over contiguous spans.
std::complex<double> zdotc(int n, const std::complex<double>* x,
                           const std::complex<double>* y);
double dznrm2(int n, const std::complex<double>* x);
void zaxpy(int n, std::complex<double> a, const std::complex<double>* x,
           std::complex<double>* y);
void zscal(int n, std::complex<double> a, std::complex<double>* x);

// Single-precision level-1 (BLAS naming). Reductions (cdotc, scnrm2)
// accumulate in double and round once on return: the fp32 Davidson's
// Gram-Schmidt expansion keeps orthogonality at fp32 eps instead of
// sqrt(n) * eps, and the level-1 traffic is negligible next to the GEMM
// and FFT sweeps that carry the fp32 speedup.
std::complex<float> cdotc(int n, const std::complex<float>* x,
                          const std::complex<float>* y);
float scnrm2(int n, const std::complex<float>* x);
void caxpy(int n, std::complex<float> a, const std::complex<float>* x,
           std::complex<float>* y);
void cscal(int n, std::complex<float> a, std::complex<float>* x);

}  // namespace ls3df
