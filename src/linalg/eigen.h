// Dense Hermitian eigensolver (cyclic Jacobi with threshold sweeps) and
// Cholesky-based utilities. Sizes here are subspace dimensions (number of
// bands, <= a few hundred), where Jacobi's O(n^3) per sweep is perfectly
// adequate and its accuracy/robustness are excellent.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.h"

namespace ls3df {

struct EighResult {
  std::vector<double> eigenvalues;  // ascending
  MatC eigenvectors;                // columns; A * v_k = w_k * v_k
};

// Full eigendecomposition of a Hermitian matrix (only the lower triangle
// and diagonal are required to be meaningful; the matrix is symmetrized).
EighResult eigh(const MatC& A);

// Grow-only scratch arena for the dense solvers below. The Rayleigh-Ritz
// loop of the iterative eigensolver calls eigh() every iteration on a
// subspace matrix of at most a few hundred rows; with an arena those
// calls allocate nothing once the arena has reached its peak — the last
// per-iteration heap source the fragment-workspace probe could not see.
// allocations() counts capacity-growth events exactly like
// EigenWorkspace so the two probes compose.
class EigenScratch {
 public:
  static constexpr int kSlots = 6;  // M, V, evecs, S, L, caller slot

  // Slot ids for the arena-backed entry points and their callers.
  static constexpr int kM = 0, kV = 1, kEvecs = 2, kS = 3, kL = 4, kA = 5;

  MatC& mat(int slot, int rows, int cols);
  std::vector<double>& dvec(int n);
  std::vector<int>& ivec(int n);

  // Grow every slot to the given subspace dimension so steady-state use
  // can never allocate (idempotent once grown).
  void reserve(int dim);

  long allocations() const { return allocs_; }

 private:
  MatC mats_[kSlots];
  std::size_t mat_peak_[kSlots] = {};
  std::vector<double> dvec_;
  std::vector<int> ivec_;
  std::size_t dvec_peak_ = 0, ivec_peak_ = 0;
  long allocs_ = 0;
};

// Arena-backed eigendecomposition: identical arithmetic to eigh(), but
// every temporary and both outputs live in (and persist through) the
// caller's scratch arena. The returned views alias scratch storage and
// stay valid until the next arena-backed call on the same scratch.
struct EighView {
  const std::vector<double>* eigenvalues;  // ascending, n entries
  const MatC* eigenvectors;                // n x n
};
EighView eigh(const MatC& A, EigenScratch& ws);

// Real symmetric convenience wrapper.
struct EighResultReal {
  std::vector<double> eigenvalues;
  MatR eigenvectors;
};
EighResultReal eigh(const MatR& A);

// Cholesky factorization A = L * L^H of a Hermitian positive-definite
// matrix; returns lower-triangular L. Throws std::runtime_error if A is
// not (numerically) positive definite.
MatC cholesky(const MatC& A);

// Arena-backed variant: factors into caller-owned (typically
// scratch-resident) storage, allocating nothing once L has reached its
// peak extent. Same arithmetic and same not-positive-definite throw.
void cholesky(const MatC& A, MatC& L);

// Solve X * L^H = B in place (right triangular solve), i.e. replace B by
// B * L^{-H}. Used to orthonormalize a band block from its overlap matrix:
// given S = X^H X = L L^H, the block X L^{-H} is orthonormal.
void trsm_right_lherm(const MatC& L, MatC& B);

// Solve the small linear system A x = b by Gaussian elimination with
// partial pivoting (A is copied). Used by the least-squares and mixing
// machinery.
std::vector<double> solve_linear(MatR A, std::vector<double> b);

}  // namespace ls3df
