// Dense Hermitian eigensolver (cyclic Jacobi with threshold sweeps) and
// Cholesky-based utilities. Sizes here are subspace dimensions (number of
// bands, <= a few hundred), where Jacobi's O(n^3) per sweep is perfectly
// adequate and its accuracy/robustness are excellent.
#pragma once

#include <complex>
#include <vector>

#include "linalg/matrix.h"

namespace ls3df {

struct EighResult {
  std::vector<double> eigenvalues;  // ascending
  MatC eigenvectors;                // columns; A * v_k = w_k * v_k
};

// Full eigendecomposition of a Hermitian matrix (only the lower triangle
// and diagonal are required to be meaningful; the matrix is symmetrized).
EighResult eigh(const MatC& A);

// Real symmetric convenience wrapper.
struct EighResultReal {
  std::vector<double> eigenvalues;
  MatR eigenvectors;
};
EighResultReal eigh(const MatR& A);

// Cholesky factorization A = L * L^H of a Hermitian positive-definite
// matrix; returns lower-triangular L. Throws std::runtime_error if A is
// not (numerically) positive definite.
MatC cholesky(const MatC& A);

// Solve X * L^H = B in place (right triangular solve), i.e. replace B by
// B * L^{-H}. Used to orthonormalize a band block from its overlap matrix:
// given S = X^H X = L L^H, the block X L^{-H} is orthonormal.
void trsm_right_lherm(const MatC& L, MatC& B);

// Solve the small linear system A x = b by Gaussian elimination with
// partial pivoting (A is copied). Used by the least-squares and mixing
// machinery.
std::vector<double> solve_linear(MatR A, std::vector<double> b);

}  // namespace ls3df
