// Dense column-major matrix, the container behind wavefunction coefficient
// blocks (n_G x n_bands), overlap matrices and subspace Hamiltonians.
// Column-major so that one band (one column) is contiguous, mirroring the
// layout plane-wave codes use for BLAS-3 orthogonalization.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

namespace ls3df {

template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
    assert(rows >= 0 && cols >= 0);
    data_.assign(static_cast<std::size_t>(rows) * cols, T{});
  }

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const {
    return static_cast<std::size_t>(rows_) * cols_;
  }
  bool empty() const { return size() == 0; }

  T& operator()(int i, int j) {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }
  const T& operator()(int i, int j) const {
    assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j) * rows_ + i];
  }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  T* col(int j) { return data_.data() + static_cast<std::size_t>(j) * rows_; }
  const T* col(int j) const {
    return data_.data() + static_cast<std::size_t>(j) * rows_;
  }

  // Zero the logical rows x cols extent (reshape may keep larger
  // backing storage; the slack is never read and need not be swept).
  void set_zero() { std::fill(data_.begin(), data_.begin() + size(), T{}); }
  void resize(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(static_cast<std::size_t>(rows) * cols, T{});
  }
  // Set dimensions reusing storage without the zero-fill of resize();
  // element values are unspecified. Storage grows monotonically to the
  // peak extent and is never shrunk or re-initialized below it, so a
  // shrink-then-grow cycle (the workspace-reuse pattern) sweeps no
  // memory at all.
  void reshape(int rows, int cols) {
    rows_ = rows;
    cols_ = cols;
    const std::size_t need = static_cast<std::size_t>(rows) * cols;
    if (need > data_.size()) data_.resize(need);
  }

  static Matrix identity(int n) {
    Matrix m(n, n);
    for (int i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

using MatR = Matrix<double>;
using MatC = Matrix<std::complex<double>>;
// Single-precision complex blocks: the storage type of the fp32 arenas
// behind the mixed-precision Davidson fast path (dft/eigensolver.h).
using MatCF = Matrix<std::complex<float>>;

}  // namespace ls3df
