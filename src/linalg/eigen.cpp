#include "linalg/eigen.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ls3df {

namespace {
using cd = std::complex<double>;

// One Jacobi rotation zeroing A(p,q). For a Hermitian matrix the 2x2 block
// [a_pp, a_pq; conj(a_pq), a_qq] is diagonalized by a complex rotation
// R = [c, s; -conj(s), c] with real c.
struct JacobiRot {
  double c;
  cd s;
};

JacobiRot compute_rotation(double app, double aqq, cd apq) {
  const double absapq = std::abs(apq);
  if (absapq == 0.0) return {1.0, cd(0, 0)};
  const cd phase = apq / absapq;
  const double tau = (aqq - app) / (2.0 * absapq);
  // tan(theta) root with smaller magnitude for stability.
  const double t = (tau >= 0 ? 1.0 : -1.0) /
                   (std::abs(tau) + std::sqrt(1.0 + tau * tau));
  const double c = 1.0 / std::sqrt(1.0 + t * t);
  return {c, phase * (t * c)};
}

// Jacobi eigendecomposition into caller-provided storage. Shared by the
// allocating and arena-backed entry points so both produce bit-identical
// results. M/V/evecs are fully overwritten; no input state survives.
void eigh_core(const MatC& A, MatC& M, MatC& V, std::vector<int>& order,
               std::vector<double>& evals, MatC& evecs) {
  const int n = A.rows();
  assert(A.cols() == n);
  M.reshape(n, n);
  // Symmetrize from the lower triangle.
  for (int j = 0; j < n; ++j) {
    M(j, j) = cd(A(j, j).real(), 0.0);
    for (int i = j + 1; i < n; ++i) {
      M(i, j) = A(i, j);
      M(j, i) = std::conj(A(i, j));
    }
  }
  V.reshape(n, n);
  for (int j = 0; j < n; ++j) {
    cd* vj = V.col(j);
    std::fill(vj, vj + n, cd{});
    vj[j] = cd(1.0, 0.0);
  }

  auto off_norm = [&]() {
    double s = 0;
    for (int j = 0; j < n; ++j)
      for (int i = j + 1; i < n; ++i) s += std::norm(M(i, j));
    return std::sqrt(2.0 * s);
  };

  const int max_sweeps = 60;
  double scale = 0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) scale = std::max(scale, std::abs(M(i, j)));
  const double tol = 1e-14 * std::max(scale, 1.0);

  for (int sweep = 0; sweep < max_sweeps && off_norm() > tol * n; ++sweep) {
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const cd apq = M(p, q);
        if (std::abs(apq) <= tol * 1e-2) continue;
        const auto [c, s] =
            compute_rotation(M(p, p).real(), M(q, q).real(), apq);
        // Apply R^H M R where R mixes columns/rows p and q.
        for (int k = 0; k < n; ++k) {
          const cd mkp = M(k, p), mkq = M(k, q);
          M(k, p) = c * mkp - std::conj(s) * mkq;
          M(k, q) = s * mkp + c * mkq;
        }
        for (int k = 0; k < n; ++k) {
          const cd mpk = M(p, k), mqk = M(q, k);
          M(p, k) = c * mpk - s * mqk;
          M(q, k) = std::conj(s) * mpk + c * mqk;
        }
        for (int k = 0; k < n; ++k) {
          const cd vkp = V(k, p), vkq = V(k, q);
          V(k, p) = c * vkp - std::conj(s) * vkq;
          V(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort ascending by eigenvalue.
  order.resize(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return M(a, a).real() < M(b, b).real(); });

  evals.resize(n);
  evecs.reshape(n, n);
  for (int j = 0; j < n; ++j) {
    evals[j] = M(order[j], order[j]).real();
    for (int i = 0; i < n; ++i) evecs(i, j) = V(i, order[j]);
  }
}

// Cholesky into caller-provided lower-triangular storage (upper triangle
// zeroed). Shared by the allocating and arena-backed entry points.
void cholesky_core(const MatC& A, MatC& L) {
  const int n = A.rows();
  assert(A.cols() == n);
  double scale = 0.0;
  for (int j = 0; j < n; ++j) scale = std::max(scale, A(j, j).real());
  // Reject near-singular matrices too: downstream triangular solves would
  // amplify rounding noise catastrophically.
  const double min_pivot = std::max(scale, 1e-300) * 1e-13;
  L.reshape(n, n);
  for (int j = 0; j < n; ++j) {
    cd* lj = L.col(j);
    std::fill(lj, lj + j, cd{});  // strict upper triangle of this column
    double d = A(j, j).real();
    for (int k = 0; k < j; ++k) d -= std::norm(L(j, k));
    if (d <= min_pivot)
      throw std::runtime_error("cholesky: not (numerically) positive definite");
    const double ljj = std::sqrt(d);
    L(j, j) = ljj;
    for (int i = j + 1; i < n; ++i) {
      cd acc = A(i, j);
      for (int k = 0; k < j; ++k) acc -= L(i, k) * std::conj(L(j, k));
      L(i, j) = acc / ljj;
    }
  }
}

}  // namespace

MatC& EigenScratch::mat(int slot, int rows, int cols) {
  assert(slot >= 0 && slot < kSlots);
  const std::size_t need = static_cast<std::size_t>(rows) * cols;
  if (need > mat_peak_[slot]) {
    mat_peak_[slot] = need;
    ++allocs_;
  }
  mats_[slot].reshape(rows, cols);
  return mats_[slot];
}

std::vector<double>& EigenScratch::dvec(int n) {
  if (static_cast<std::size_t>(n) > dvec_peak_) {
    dvec_peak_ = n;
    ++allocs_;
  }
  dvec_.resize(n);
  return dvec_;
}

std::vector<int>& EigenScratch::ivec(int n) {
  if (static_cast<std::size_t>(n) > ivec_peak_) {
    ivec_peak_ = n;
    ++allocs_;
  }
  ivec_.resize(n);
  return ivec_;
}

void EigenScratch::reserve(int dim) {
  for (int slot = 0; slot < kSlots; ++slot) mat(slot, dim, dim);
  dvec(dim);
  ivec(dim);
}

EighResult eigh(const MatC& A) {
  MatC M, V;
  std::vector<int> order;
  EighResult result;
  eigh_core(A, M, V, order, result.eigenvalues, result.eigenvectors);
  return result;
}

EighView eigh(const MatC& A, EigenScratch& ws) {
  const int n = A.rows();
  MatC& M = ws.mat(EigenScratch::kM, n, n);
  MatC& V = ws.mat(EigenScratch::kV, n, n);
  MatC& evecs = ws.mat(EigenScratch::kEvecs, n, n);
  std::vector<int>& order = ws.ivec(n);
  std::vector<double>& evals = ws.dvec(n);
  eigh_core(A, M, V, order, evals, evecs);
  return EighView{&evals, &evecs};
}

EighResultReal eigh(const MatR& A) {
  const int n = A.rows();
  MatC Ac(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) Ac(i, j) = cd(A(i, j), 0.0);
  EighResult r = eigh(Ac);
  EighResultReal out;
  out.eigenvalues = std::move(r.eigenvalues);
  out.eigenvectors.resize(n, n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i)
      out.eigenvectors(i, j) = r.eigenvectors(i, j).real();
  return out;
}

MatC cholesky(const MatC& A) {
  MatC L;
  cholesky_core(A, L);
  return L;
}

void cholesky(const MatC& A, MatC& L) { cholesky_core(A, L); }

void trsm_right_lherm(const MatC& L, MatC& B) {
  // Solve X L^H = B, i.e. for each row x of B: x = b * L^{-H}.
  // L^H is upper triangular with (L^H)(k,j) = conj(L(j,k)).
  // Forward substitution over columns: X(:,0) = B(:,0)/conj(L(0,0)), then
  // X(:,j) = (B(:,j) - sum_{k<j} X(:,k) conj(L(j,k))) / conj(L(j,j)).
  const int n = L.rows();
  const int m = B.rows();
  assert(B.cols() == n);
  for (int j = 0; j < n; ++j) {
    cd* bj = B.col(j);
    for (int k = 0; k < j; ++k) {
      const cd ljk = std::conj(L(j, k));
      if (ljk == cd(0, 0)) continue;
      const cd* bk = B.col(k);
      for (int i = 0; i < m; ++i) bj[i] -= bk[i] * ljk;
    }
    const cd d = std::conj(L(j, j));
    for (int i = 0; i < m; ++i) bj[i] /= d;
  }
}

std::vector<double> solve_linear(MatR A, std::vector<double> b) {
  const int n = A.rows();
  assert(A.cols() == n && static_cast<int>(b.size()) == n);
  for (int k = 0; k < n; ++k) {
    // Partial pivot.
    int piv = k;
    for (int i = k + 1; i < n; ++i)
      if (std::abs(A(i, k)) > std::abs(A(piv, k))) piv = i;
    if (std::abs(A(piv, k)) < 1e-300)
      throw std::runtime_error("solve_linear: singular matrix");
    if (piv != k) {
      for (int j = 0; j < n; ++j) std::swap(A(k, j), A(piv, j));
      std::swap(b[k], b[piv]);
    }
    for (int i = k + 1; i < n; ++i) {
      const double f = A(i, k) / A(k, k);
      if (f == 0.0) continue;
      for (int j = k; j < n; ++j) A(i, j) -= f * A(k, j);
      b[i] -= f * b[k];
    }
  }
  std::vector<double> x(n);
  for (int i = n - 1; i >= 0; --i) {
    double acc = b[i];
    for (int j = i + 1; j < n; ++j) acc -= A(i, j) * x[j];
    x[i] = acc / A(i, i);
  }
  return x;
}

}  // namespace ls3df
