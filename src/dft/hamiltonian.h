// Plane-wave Kohn-Sham Hamiltonian  H = -1/2 nabla^2 + V_loc(r) + V_NL.
// Kinetic and nonlocal terms act in q-space; the local potential acts in
// real space via FFTs — the standard planewave-code structure shared by
// PEtot, PARATEC and Qbox (Sec. IV).
//
// Both application paths of the paper's optimization study are provided:
//   apply()       all bands at once (BLAS-3 nonlocal, batched FFTs)
//   apply_band()  one band at a time (BLAS-2 nonlocal), the original
//                 PEtot band-by-band scheme
//
// Thread safety: apply/apply_band/density/density_into/
// kinetic_energy_density all reuse the internal FFT scratch (work_), so
// one Hamiltonian instance must not be driven from two threads at once.
// The LS3DF engine guarantees this by owning one Hamiltonian per
// fragment and running each fragment on a single worker lane.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "atoms/structure.h"
#include "common/flops.h"
#include "fft/fft3d.h"
#include "grid/field3d.h"
#include "grid/gvectors.h"
#include "linalg/blas.h"
#include "linalg/matrix.h"
#include "pseudo/pseudopotential.h"

namespace ls3df {

// Grow-only scratch arena for Hamiltonian::apply_batched: the contiguous
// many-transform grid stack plus one nonlocal projection matrix per batch
// member. One arena per batch, persistent across SCF iterations, so the
// steady state allocates nothing; allocations() counts capacity-growth
// events like EigenWorkspace so the LS3DF probe can watch it.
class ApplyBatchWorkspace {
 public:
  // Contiguous stack of n complex grid points (values unspecified).
  std::complex<double>* grid_stack(std::size_t n);
  // Projection matrix slot for batch member `member`, sized rows x cols.
  MatC& proj(int member, int rows, int cols);

  // Single-precision twins backing apply_batched_f32 (the mixed-precision
  // Davidson fast path). They live beside the double arenas, not instead
  // of them: a batch whose SCF loop alternates precision (fp32 early
  // iterations, fp64 after promotion) keeps both steady states resident,
  // and neither costs anything until first touched.
  std::complex<float>* grid_stack_f32(std::size_t n);
  MatCF& proj_f32(int member, int rows, int cols);

  long allocations() const { return allocs_; }

  // Dispatch-control scratch hoisted out of apply_batched: band offsets,
  // the band -> member map, and the batched-GEMM item lists. Tiny, but a
  // fresh heap allocation per dispatch would keep the steady-state
  // allocation probes from ever going flat. Grow-only (assign/clear keep
  // capacity); capacity growth is folded into allocations() once per
  // dispatch via note_dispatch_capacity().
  std::vector<int> off, member_of, nl_members;
  std::vector<GemmBatchItem> overlap_items, accum_items;
  std::vector<GemmBatchItemF> overlap_items_f32, accum_items_f32;

 private:
  friend class Hamiltonian;
  void note_dispatch_capacity();

  std::vector<std::complex<double>> stack_;
  std::size_t stack_peak_ = 0;
  std::deque<MatC> proj_;  // deque: slot addresses stay stable on growth
  std::vector<std::size_t> proj_peak_;
  std::vector<std::complex<float>> stack_f32_;
  std::size_t stack_f32_peak_ = 0;
  std::deque<MatCF> proj_f32_;
  std::vector<std::size_t> proj_f32_peak_;
  std::size_t dispatch_peak_ = 0;
  long allocs_ = 0;
};

class Hamiltonian {
 public:
  // `basis` defines the wavefunction plane-wave set; the FFT grid is the
  // basis' grid shape. The local potential starts as the bare ionic one
  // and is replaced each SCF step via set_local_potential().
  Hamiltonian(const Structure& s, const GVectors& basis);

  const GVectors& basis() const { return *basis_; }
  const Structure& structure() const { return structure_; }
  const NonlocalKB& nonlocal() const { return *nl_; }
  const FieldR& local_potential() const { return vloc_; }

  void set_local_potential(const FieldR& v);

  // hpsi = H psi for all columns (allocates hpsi to match psi).
  void apply(const MatC& psi, MatC& hpsi) const;
  // hpsi = H psi for a single band.
  void apply_band(const std::complex<double>* psi,
                  std::complex<double>* hpsi) const;

  // One member of a batched application: hpsi_i = H_i psi_i. `slot`
  // names the member's workspace slot; it must stay stable for the
  // lifetime of the batch (callers that drop converged members from the
  // item list keep each survivor's original slot, so per-slot arena
  // peaks never regress). Negative means "use the item's position".
  struct ApplyItem {
    const Hamiltonian* h = nullptr;
    const MatC* psi = nullptr;
    MatC* hpsi = nullptr;
    int slot = -1;
  };

  // Batched application across a stack of same-size-class fragments (all
  // members must share the FFT grid shape; basis tables are per member).
  // The local part scatters every band of every member into one
  // contiguous grid stack and runs a single inverse/forward many-
  // transform sweep; the nonlocal part runs two batched GEMMs. Per-band
  // arithmetic is exactly apply()'s, so a batched call is bit-identical
  // to the member-by-member loop for any n_workers — batching only
  // changes scheduling and cache behaviour. This is the seam a GPU
  // backend slots into: the grid stack and the fused GEMM grid are the
  // device-friendly units.
  static void apply_batched(const std::vector<ApplyItem>& items,
                            ApplyBatchWorkspace& ws, int n_workers = 1);

  // Single-precision batch member (fp32 wavefunction blocks).
  struct ApplyItemF32 {
    const Hamiltonian* h = nullptr;
    const MatCF* psi = nullptr;
    MatCF* hpsi = nullptr;
    int slot = -1;
  };

  // Single-precision twin of apply_batched: the same scatter / many-FFT /
  // V_loc / gather+kinetic / two-GEMM structure, run entirely in fp32
  // (single-precision FFT plans, float GEMM cores, fp32 grid stack).
  // This path is NOT bit-identical to apply() — it is the engine of the
  // mixed-precision Davidson fast path and is guarded by trajectory
  // checks (tests/test_mixed_precision.cpp) rather than the bit-identity
  // contract. Each member's fp32 mirrors (V_loc, |G|^2, KB projectors)
  // are built up front, serially, so the parallel body never races a
  // lazy build.
  static void apply_batched_f32(const std::vector<ApplyItemF32>& items,
                                ApplyBatchWorkspace& ws, int n_workers = 1);

  // Kinetic energy sum_i occ_i <psi_i| -1/2 nabla^2 |psi_i>.
  double kinetic_energy(const MatC& psi, const std::vector<double>& occ) const;

  // Kinetic energy density tau(r) = sum_i occ_i 1/2 |grad psi_i(r)|^2 on
  // the FFT grid (used by the LS3DF patched kinetic energy).
  FieldR kinetic_energy_density(const MatC& psi,
                                const std::vector<double>& occ) const;

  // Flop accounting: all applications add analytic counts here.
  void set_flop_counter(FlopCounter* fc) { flops_ = fc; }

  // Electron density of the given (orthonormal) bands with occupations;
  // normalized so that  int rho d3r = sum(occ).
  FieldR density(const MatC& psi, const std::vector<double>& occ) const;

  // Same, accumulated into a caller-owned field of the FFT-grid shape
  // (overwritten). With n_workers > 1 (the batched fragment dispatch
  // passes its inner lanes) all occupied bands are scattered into one
  // contiguous grid stack and moved to real space by a single
  // Fft3D::inverse_many sweep — the batched-kernel shape of the fragment
  // solver; the stack is a grow-only internal arena, so the steady state
  // allocates nothing. With n_workers <= 1 the bands stream through the
  // single work_ grid (no stack memory). Per-band arithmetic and the
  // band-order accumulation are identical either way, so the density is
  // bit-identical for any n_workers.
  void density_into(const MatC& psi, const std::vector<double>& occ,
                    FieldR& rho, int n_workers = 1) const;

 private:
  void apply_local(const std::complex<double>* in,
                   std::complex<double>* out) const;

  // Build the single-precision mirrors apply_batched_f32 reads: V_loc is
  // re-rounded whenever set_local_potential() replaces it; |G|^2 and the
  // KB projectors/strengths are immutable after construction and rounded
  // once. Serial-only — callers invoke it before fanning out.
  void ensure_f32_mirrors() const;

  Structure structure_;
  std::unique_ptr<GVectors> basis_;
  Fft3D fft_;
  FieldR vloc_;
  std::unique_ptr<NonlocalKB> nl_;
  FlopCounter* flops_ = nullptr;
  mutable FieldC work_;  // FFT scratch
  // Grow-only grid stack for density_into's many-transform sweep (one
  // grid per occupied band). Like work_, shares the instance's
  // one-thread-at-a-time contract.
  mutable std::vector<std::complex<double>> density_stack_;
  // Single-precision mirrors for apply_batched_f32 (see
  // ensure_f32_mirrors). Lazily built; V_loc's copy is invalidated by
  // set_local_potential so fp64-only runs never pay for them.
  mutable std::vector<float> vloc_f32_;
  mutable bool vloc_f32_valid_ = false;
  mutable std::vector<float> g2_f32_;
  mutable MatCF projectors_f32_;
  mutable std::vector<float> strengths_f32_;
};

// Default density/FFT grid for a lattice and wavefunction cutoff: large
// enough to hold charge-density frequencies (2 G_max) without aliasing,
// rounded up to a 2-3-5-smooth FFT size.
Vec3i default_fft_grid(const Lattice& lat, double ecut_hartree);

}  // namespace ls3df
