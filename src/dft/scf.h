// Direct (whole-system) self-consistent field driver: the O(N^3) baseline
// the paper compares LS3DF against (stand-alone PEtot / PARATEC class).
// The loop structure matches Fig. 2 with a single "fragment" spanning the
// entire cell: V_in -> solve bands -> rho -> V_out -> mix -> repeat, with
// convergence measured by  int |V_out - V_in| d3r  (Fig. 6 metric).
#pragma once

#include <cstdint>
#include <vector>

#include "atoms/structure.h"
#include "dft/eigensolver.h"
#include "dft/energy.h"
#include "dft/hamiltonian.h"
#include "dft/mixing.h"
#include "fft/dist_fft3d.h"
#include "grid/sharded_field.h"

namespace ls3df {

struct ScfOptions {
  double ecut = 2.0;          // wavefunction cutoff, Hartree
  int n_bands = 0;            // 0 = occupied + 25% (min 4) empty bands
  int max_iterations = 60;
  double l1_tol = 1e-3;       // a.u., on int |V_out - V_in| d3r
  MixerType mixer = MixerType::kPulay;
  double mix_alpha = 0.6;
  EigensolverOptions eig{/*max_iterations=*/12, /*residual_tol=*/1e-6,
                         /*precondition=*/true};
  bool all_band = true;       // false = band-by-band CG (original scheme)
  std::uint64_t seed = 12345;
  bool compute_energy = true;
  // Gaussian occupation smearing width (Ha). 0 keeps integer occupations
  // (the paper's gapped systems); > 0 stabilizes SCF for (near-)metallic
  // or level-crossing cases by fractionally occupying degenerate shells.
  double smearing = 0.0;
};

struct ScfResult {
  FieldR v_eff;                     // converged effective potential
  FieldR rho;                       // converged density
  MatC psi;                         // final wavefunctions
  std::vector<double> eigenvalues;  // band energies (Ha)
  std::vector<double> occupations;
  EnergyBreakdown energy;
  std::vector<double> conv_history;  // int |V_out - V_in| per iteration
  int iterations = 0;
  bool converged = false;
};

// Occupations for `electrons` electrons over n_bands (spin-degenerate).
std::vector<double> fill_occupations(double electrons, int n_bands);

// Gaussian-smeared occupations: f_i = erfc((eps_i - mu)/sigma), with the
// chemical potential mu found by bisection so that sum f_i = electrons.
std::vector<double> smeared_occupations(const std::vector<double>& eigenvalues,
                                        double electrons, double sigma);

// Effective potential from a density: V_ion + V_H[rho] + V_xc[rho].
FieldR effective_potential(const FieldR& vion, const FieldR& rho,
                           const Lattice& lat);

// The sharded twin: GENPOT assembled on x-slabs — Hartree per-shard in
// G-space via the distributed FFT, LDA xc slab-locally — bit-identical
// per point to effective_potential on the dense grid for any shard
// count. `vh` and `vxc` are caller-owned scratch shaped like `rho`, so
// the steady state allocates nothing.
void sharded_effective_potential(const ShardedFieldR& vion,
                                 const ShardedFieldR& rho, const Lattice& lat,
                                 DistFft3D& fft, ShardedFieldR& vh,
                                 ShardedFieldR& vxc, ShardedFieldR& v_out);

// The xc + assembly stage of the sharded GENPOT alone: per slab,
// v_out = (vion + v_h) + vxc[rho] in the dense accumulation order.
// Shared by sharded_effective_potential and the overlapped driver's
// chained GENPOT nodes (fragment/ls3df.cpp), which run the Hartree
// stage (poisson/sharded_poisson.h) as a separate graph node.
void sharded_assemble_potential(const ShardedFieldR& vion,
                                const ShardedFieldR& rho,
                                const ShardedFieldR& vh, ShardedFieldR& vxc,
                                ShardedFieldR& v_out, ShardComm& comm);

ScfResult run_scf(const Structure& s, const ScfOptions& opt);

// As run_scf but reusing an existing Hamiltonian (and its basis) plus an
// initial potential guess; used by the LS3DF driver for fragments and by
// restart workflows.
ScfResult run_scf(Hamiltonian& h, const FieldR& vion, const FieldR& v_start,
                  const ScfOptions& opt);

}  // namespace ls3df
