#include "dft/energy.h"

#include "poisson/ewald.h"
#include "poisson/poisson.h"
#include "xc/lda.h"

namespace ls3df {

EnergyBreakdown total_energy(const Hamiltonian& h, const MatC& psi,
                             const std::vector<double>& occ,
                             const FieldR& rho, const FieldR& vion) {
  EnergyBreakdown e;
  const Lattice& lat = h.basis().lattice();
  const double point_vol =
      lat.volume() / static_cast<double>(rho.size());

  e.kinetic = h.kinetic_energy(psi, occ);
  e.nonlocal = h.nonlocal().energy(psi, occ);

  double eloc = 0;
  for (std::size_t i = 0; i < rho.size(); ++i) eloc += vion[i] * rho[i];
  e.local = eloc * point_vol;

  e.hartree = solve_poisson(rho, lat).energy;
  e.xc = lda_xc_field(rho, point_vol).energy;
  e.ewald = ewald_energy(h.structure());

  e.total = e.kinetic + e.nonlocal + e.local + e.hartree + e.xc + e.ewald;
  return e;
}

}  // namespace ls3df
