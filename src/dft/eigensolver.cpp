#include "dft/eigensolver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eigen.h"

namespace ls3df {

using cd = std::complex<double>;

namespace {

// Teter-Payne-Allan preconditioner factor for x = (kinetic of G) / (band
// kinetic energy).
double tpa_factor(double x) {
  const double num = 27.0 + 18.0 * x + 12.0 * x * x + 8.0 * x * x * x;
  const double x4 = x * x * x * x;
  return num / (num + 16.0 * x4);
}

// Apply TPA preconditioner to a residual vector for a band with kinetic
// energy ekin.
void precondition_tpa(const GVectors& basis, double ekin, const cd* r,
                      cd* out) {
  const double ek = std::max(ekin, 1e-6);
  for (int g = 0; g < basis.count(); ++g) {
    const double x = 0.5 * basis.g2(g) / ek;
    out[g] = tpa_factor(x) * r[g];
  }
}

double band_kinetic(const GVectors& basis, const cd* psi) {
  double e = 0;
  for (int g = 0; g < basis.count(); ++g)
    e += 0.5 * basis.g2(g) * std::norm(psi[g]);
  return e;
}

}  // namespace

void orthonormalize_cholesky(MatC& X) {
  MatC S = overlap(X, X);
  try {
    MatC L = cholesky(S);
    trsm_right_lherm(L, X);
  } catch (const std::runtime_error&) {
    orthonormalize_gram_schmidt(X);
  }
}

void orthonormalize_gram_schmidt(MatC& X) {
  const int ng = X.rows(), nb = X.cols();
  assert(nb <= ng);
  Rng rng(0xec5f00du);
  for (int j = 0; j < nb; ++j) {
    cd* xj = X.col(j);
    double nrm = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const double before = dznrm2(ng, xj);
      // Project twice (classical Gram-Schmidt applied twice is stable).
      for (int pass = 0; pass < 2; ++pass) {
        for (int k = 0; k < j; ++k) {
          const cd proj = zdotc(ng, X.col(k), xj);
          zaxpy(ng, -proj, X.col(k), xj);
        }
      }
      nrm = dznrm2(ng, xj);
      if (nrm > 1e-10 * std::max(before, 1.0)) break;
      // Column (numerically) inside span of earlier ones: replace with a
      // deterministic random vector and retry.
      for (int g = 0; g < ng; ++g)
        xj[g] = cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
    zscal(ng, cd(1.0 / nrm, 0.0), xj);
  }
}

std::vector<double> subspace_rotate(const Hamiltonian& h, MatC& X) {
  MatC HX;
  h.apply(X, HX);
  MatC G = overlap(X, HX);
  EighResult r = eigh(G);
  MatC Xr(X.rows(), X.cols());
  gemm(Op::kNone, Op::kNone, cd(1, 0), X, r.eigenvectors, cd(0, 0), Xr);
  X = std::move(Xr);
  return r.eigenvalues;
}

MatC random_wavefunctions(const GVectors& basis, int n_bands,
                          std::uint64_t seed) {
  Rng rng(seed);
  MatC psi(basis.count(), n_bands);
  for (int j = 0; j < n_bands; ++j) {
    for (int g = 0; g < basis.count(); ++g) {
      // Damp high-G components so the guess has low kinetic energy.
      const double damp = 1.0 / (1.0 + basis.g2(g));
      psi(g, j) = damp * cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
  }
  orthonormalize_cholesky(psi);
  return psi;
}

EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt) {
  const GVectors& basis = h.basis();
  const int ng = basis.count();
  const int nb = psi.cols();
  assert(psi.rows() == ng);
  assert(nb <= ng);

  orthonormalize_cholesky(psi);

  EigensolverResult result;
  MatC V = psi;       // current Ritz block
  MatC HV;
  h.apply(V, HV);

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Rayleigh-Ritz in span(V).
    MatC G = overlap(V, HV);
    EighResult eg = eigh(G);
    const int dim = V.cols();
    // Keep the lowest nb Ritz vectors.
    MatC Y(dim, nb);
    for (int j = 0; j < nb; ++j)
      for (int i = 0; i < dim; ++i) Y(i, j) = eg.eigenvectors(i, j);
    MatC X(ng, nb), HX(ng, nb);
    gemm(Op::kNone, Op::kNone, cd(1, 0), V, Y, cd(0, 0), X);
    gemm(Op::kNone, Op::kNone, cd(1, 0), HV, Y, cd(0, 0), HX);
    result.eigenvalues.assign(eg.eigenvalues.begin(),
                              eg.eigenvalues.begin() + nb);

    // Residuals R = HX - X diag(eps).
    MatC R = HX;
    for (int j = 0; j < nb; ++j)
      zaxpy(ng, cd(-result.eigenvalues[j], 0.0), X.col(j), R.col(j));
    double max_res = 0;
    for (int j = 0; j < nb; ++j)
      max_res = std::max(max_res, dznrm2(ng, R.col(j)));
    result.max_residual = max_res;
    if (max_res < opt.residual_tol) {
      result.converged = true;
      psi = std::move(X);
      return result;
    }

    // Preconditioned correction block.
    MatC T(ng, nb);
    for (int j = 0; j < nb; ++j) {
      if (opt.precondition) {
        precondition_tpa(basis, band_kinetic(basis, X.col(j)), R.col(j),
                         T.col(j));
      } else {
        std::copy(R.col(j), R.col(j) + ng, T.col(j));
      }
    }
    // New search space [X | accepted corrections]: corrections are
    // Gram-Schmidt-appended one at a time; columns that are (numerically)
    // linearly dependent are dropped, and the total is capped at ng so the
    // subspace can never exceed the full basis (small fragments can have
    // very few plane waves).
    MatC Vn(ng, std::min(2 * nb, ng));
    for (int j = 0; j < nb; ++j) std::copy(X.col(j), X.col(j) + ng, Vn.col(j));
    int cols = nb;
    for (int j = 0; j < nb && cols < Vn.cols(); ++j) {
      cd* t = T.col(j);
      for (int pass = 0; pass < 2; ++pass)
        for (int k = 0; k < cols; ++k) {
          const cd proj = zdotc(ng, Vn.col(k), t);
          zaxpy(ng, -proj, Vn.col(k), t);
        }
      const double nrm = dznrm2(ng, t);
      if (nrm < 1e-8) continue;  // dependent: drop
      zscal(ng, cd(1.0 / nrm, 0.0), t);
      std::copy(t, t + ng, Vn.col(cols));
      ++cols;
    }
    if (cols == nb) {
      // No useful corrections left: the block is as converged as the
      // basis allows.
      result.converged = true;
      psi = std::move(X);
      return result;
    }
    MatC Vt(ng, cols);
    for (int j = 0; j < cols; ++j)
      std::copy(Vn.col(j), Vn.col(j) + ng, Vt.col(j));
    V = std::move(Vt);
    h.apply(V, HV);
  }

  // Not converged within budget: return the best current Ritz vectors.
  MatC G = overlap(V, HV);
  EighResult eg = eigh(G);
  MatC Y(V.cols(), nb);
  for (int j = 0; j < nb; ++j)
    for (int i = 0; i < V.cols(); ++i) Y(i, j) = eg.eigenvectors(i, j);
  MatC X(ng, nb);
  gemm(Op::kNone, Op::kNone, cd(1, 0), V, Y, cd(0, 0), X);
  psi = std::move(X);
  result.eigenvalues.assign(eg.eigenvalues.begin(),
                            eg.eigenvalues.begin() + nb);
  return result;
}

EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt) {
  const GVectors& basis = h.basis();
  const int ng = basis.count();
  const int nb = psi.cols();
  orthonormalize_gram_schmidt(psi);

  EigensolverResult result;
  std::vector<cd> hpsi(ng), r(ng), d(ng), hd(ng), prev_d;
  double max_res = 0;

  for (int j = 0; j < nb; ++j) {
    cd* x = psi.col(j);
    prev_d.clear();
    double prev_r2 = 0;

    // Orthogonalize the starting vector against the already-converged
    // lower bands (they moved since the initial Gram-Schmidt); otherwise
    // the minimization slides back into the lowest states.
    for (int k = 0; k < j; ++k) {
      const cd proj = zdotc(ng, psi.col(k), x);
      zaxpy(ng, -proj, psi.col(k), x);
    }
    {
      const double nrm = dznrm2(ng, x);
      if (nrm < 1e-12) {
        Rng rng(0xbadc0de + j);
        for (int g = 0; g < ng; ++g)
          x[g] = cd(rng.uniform(-1, 1), rng.uniform(-1, 1)) /
                 (1.0 + basis.g2(g));
        for (int k = 0; k < j; ++k) {
          const cd proj = zdotc(ng, psi.col(k), x);
          zaxpy(ng, -proj, psi.col(k), x);
        }
      }
      zscal(ng, cd(1.0 / dznrm2(ng, x), 0.0), x);
    }

    for (int step = 0; step < opt.max_iterations; ++step) {
      if (j == 0 && step == 0) result.iterations = 0;
      h.apply_band(x, hpsi.data());
      const double eps = zdotc(ng, x, hpsi.data()).real();
      // Residual, projected against all bands <= j (Gram-Schmidt style).
      for (int g = 0; g < ng; ++g) r[g] = hpsi[g] - eps * x[g];
      for (int k = 0; k <= j; ++k) {
        const cd proj = zdotc(ng, psi.col(k), r.data());
        zaxpy(ng, -proj, psi.col(k), r.data());
      }
      const double rn = dznrm2(ng, r.data());
      max_res = std::max(max_res, rn);
      if (rn < opt.residual_tol) break;

      // Preconditioned direction with Polak-Ribiere CG mixing.
      if (opt.precondition) {
        precondition_tpa(basis, band_kinetic(basis, x), r.data(), d.data());
      } else {
        d = r;
      }
      const double r2 = zdotc(ng, r.data(), d.data()).real();
      if (!prev_d.empty() && prev_r2 > 0) {
        const double beta = std::max(0.0, r2 / prev_r2);
        zaxpy(ng, cd(beta, 0.0), prev_d.data(), d.data());
      }
      prev_d = d;
      prev_r2 = r2;

      // Orthogonalize the direction to bands <= j and normalize.
      for (int k = 0; k <= j; ++k) {
        const cd proj = zdotc(ng, psi.col(k), d.data());
        zaxpy(ng, -proj, psi.col(k), d.data());
      }
      const double dn = dznrm2(ng, d.data());
      if (dn < 1e-14) break;
      zscal(ng, cd(1.0 / dn, 0.0), d.data());

      // Exact 2x2 Rayleigh-Ritz between x and the unit direction d.
      h.apply_band(d.data(), hd.data());
      const double add = zdotc(ng, d.data(), hd.data()).real();
      const cd axd = zdotc(ng, x, hd.data());
      MatC h2(2, 2);
      h2(0, 0) = eps;
      h2(1, 1) = add;
      h2(0, 1) = axd;
      h2(1, 0) = std::conj(axd);
      EighResult e2 = eigh(h2);
      const cd c0 = e2.eigenvectors(0, 0), c1 = e2.eigenvectors(1, 0);
      for (int g = 0; g < ng; ++g) x[g] = c0 * x[g] + c1 * d[g];
      // Re-project against lower bands to stop rounding drift from
      // re-introducing converged components, then renormalize.
      for (int k = 0; k < j; ++k) {
        const cd proj = zdotc(ng, psi.col(k), x);
        zaxpy(ng, -proj, psi.col(k), x);
      }
      const double xn = dznrm2(ng, x);
      zscal(ng, cd(1.0 / xn, 0.0), x);
      result.iterations += 1;
    }
  }

  // Final subspace rotation sorts bands and returns eigenvalues.
  result.eigenvalues = subspace_rotate(h, psi);
  result.max_residual = max_res;
  result.converged = max_res < opt.residual_tol;
  return result;
}

}  // namespace ls3df
