#include "dft/eigensolver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <new>
#include <numeric>

#include "common/rng.h"
#include "linalg/blas.h"
#include "linalg/eigen.h"
#include "obs/trace.h"
#include "parallel/thread_pool.h"

namespace ls3df {

using cd = std::complex<double>;
using cf = std::complex<float>;

namespace {

// Level-1 shims dispatching on the element type, so the scalar Davidson
// steps below can be templated over the real type. The double
// instantiations forward to exactly the calls the untemplated code made,
// so the fp64 path's arithmetic (and the bit-identity contract) is
// untouched; the float ones back the mixed-precision fast path.
inline cd dotc(int n, const cd* x, const cd* y) { return zdotc(n, x, y); }
inline cf dotc(int n, const cf* x, const cf* y) { return cdotc(n, x, y); }
inline double nrm2(int n, const cd* x) { return dznrm2(n, x); }
inline double nrm2(int n, const cf* x) { return scnrm2(n, x); }
inline void axpy(int n, cd a, const cd* x, cd* y) { zaxpy(n, a, x, y); }
inline void axpy(int n, cf a, const cf* x, cf* y) { caxpy(n, a, x, y); }
inline void scal(int n, cd a, cd* x) { zscal(n, a, x); }
inline void scal(int n, cf a, cf* x) { cscal(n, a, x); }

// Teter-Payne-Allan preconditioner factor for x = (kinetic of G) / (band
// kinetic energy).
double tpa_factor(double x) {
  const double num = 27.0 + 18.0 * x + 12.0 * x * x + 8.0 * x * x * x;
  const double x4 = x * x * x * x;
  return num / (num + 16.0 * x4);
}

// Apply TPA preconditioner to a residual vector for a band with kinetic
// energy ekin. The factor is computed in double for either precision
// (it is a handful of scalar ops per G) and rounded into the output.
template <typename Real>
void precondition_tpa(const GVectors& basis, double ekin,
                      const std::complex<Real>* r, std::complex<Real>* out) {
  const double ek = std::max(ekin, 1e-6);
  for (int g = 0; g < basis.count(); ++g) {
    const double x = 0.5 * basis.g2(g) / ek;
    out[g] = Real(tpa_factor(x)) * r[g];
  }
}

template <typename Real>
double band_kinetic(const GVectors& basis, const std::complex<Real>* psi) {
  double e = 0;
  for (int g = 0; g < basis.count(); ++g)
    e += 0.5 * basis.g2(g) * static_cast<double>(std::norm(psi[g]));
  return e;
}

// Mat slots of the all-band solver (V/HV/Vn sized up to ng x 2nb, the
// rest ng x nb or smaller).
constexpr int kV = 0, kHV = 1, kX = 2, kHX = 3, kR = 4, kT = 5, kVn = 6,
              kG = 7, kY = 8;
// Vec slots of the band-by-band solver.
constexpr int kHpsi = 0, kRes = 1, kDir = 2, kHDir = 3, kPrevDir = 4;

}  // namespace

MatC& EigenWorkspace::mat(int slot, int rows, int cols) {
  assert(slot >= 0 && slot < kMatSlots);
  const std::size_t need = static_cast<std::size_t>(rows) * cols;
  if (need > mat_peak_[slot]) {
    mat_peak_[slot] = need;
    ++allocs_;
  }
  // reshape, not resize: no zero-fill sweep — every slot is fully
  // written before it is read (which also keeps results independent of
  // the arena's history).
  mats_[slot].reshape(rows, cols);
  return mats_[slot];
}

std::vector<std::complex<double>>& EigenWorkspace::vec(int slot, int n) {
  assert(slot >= 0 && slot < kVecSlots);
  if (static_cast<std::size_t>(n) > vec_peak_[slot]) {
    vec_peak_[slot] = n;
    ++allocs_;
  }
  vecs_[slot].resize(n);
  return vecs_[slot];
}

MatCF& EigenWorkspace::mat_f32(int slot, int rows, int cols) {
  assert(slot >= 0 && slot < kMatSlots);
  const std::size_t need = static_cast<std::size_t>(rows) * cols;
  if (need > mat_f32_peak_[slot]) {
    mat_f32_peak_[slot] = need;
    ++allocs_;
  }
  mats_f32_[slot].reshape(rows, cols);
  return mats_f32_[slot];
}

void EigenWorkspace::reserve(int ng, int nb, bool all_band) {
  const int vmax = std::min(2 * nb, ng);
  if (all_band) {
    mat(kV, ng, vmax);
    mat(kHV, ng, vmax);
    mat(kVn, ng, vmax);
    mat(kX, ng, nb);
    mat(kHX, ng, nb);
    mat(kR, ng, nb);
    mat(kT, ng, nb);
    mat(kG, vmax, vmax);
    mat(kY, vmax, nb);
  }
  for (int s = 0; s < kVecSlots; ++s) vec(s, ng);
  scratch_.reserve(all_band ? std::max(vmax, 2) : 2);
}

EigenWorkspace& BatchWorkspace::member(int i) {
  assert(i >= 0);
  while (static_cast<int>(members_.size()) <= i) members_.emplace_back();
  return members_[i];
}

long BatchWorkspace::allocations() const {
  long total = apply_.allocations() + allocs_;
  for (const EigenWorkspace& ws : members_) total += ws.allocations();
  return total;
}

void* BatchWorkspace::member_table(std::size_t bytes) {
  if (bytes > member_table_peak_) {
    member_table_peak_ = bytes;
    ++allocs_;
    member_table_.resize(bytes);
  }
  return member_table_.data();
}

void BatchWorkspace::note_dispatch_capacity() {
  const std::size_t cap =
      apply_items.capacity() + apply_items_f32.capacity() +
      g_items.capacity() + x_items.capacity() + hx_items.capacity() +
      g_items_f32.capacity() + x_items_f32.capacity() +
      hx_items_f32.capacity() + active.capacity() + still.capacity();
  if (cap > dispatch_peak_) {
    dispatch_peak_ = cap;
    ++allocs_;
  }
}

void orthonormalize_cholesky(MatC& X) {
  MatC S = overlap(X, X);
  try {
    MatC L = cholesky(S);
    trsm_right_lherm(L, X);
  } catch (const std::runtime_error&) {
    orthonormalize_gram_schmidt(X);
  }
}

void orthonormalize_cholesky(MatC& X, EigenScratch& ws) {
  MatC& S = ws.mat(EigenScratch::kS, X.cols(), X.cols());
  gemm(Op::kConjTrans, Op::kNone, cd(1, 0), X, X, cd(0, 0), S);
  try {
    MatC& L = ws.mat(EigenScratch::kL, X.cols(), X.cols());
    cholesky(S, L);
    trsm_right_lherm(L, X);
  } catch (const std::runtime_error&) {
    orthonormalize_gram_schmidt(X);
  }
}

void orthonormalize_gram_schmidt(MatC& X) {
  const int ng = X.rows(), nb = X.cols();
  assert(nb <= ng);
  Rng rng(0xec5f00du);
  for (int j = 0; j < nb; ++j) {
    cd* xj = X.col(j);
    double nrm = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const double before = dznrm2(ng, xj);
      // Project twice (classical Gram-Schmidt applied twice is stable).
      for (int pass = 0; pass < 2; ++pass) {
        for (int k = 0; k < j; ++k) {
          const cd proj = zdotc(ng, X.col(k), xj);
          zaxpy(ng, -proj, X.col(k), xj);
        }
      }
      nrm = dznrm2(ng, xj);
      if (nrm > 1e-10 * std::max(before, 1.0)) break;
      // Column (numerically) inside span of earlier ones: replace with a
      // deterministic random vector and retry.
      for (int g = 0; g < ng; ++g)
        xj[g] = cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
    zscal(ng, cd(1.0 / nrm, 0.0), xj);
  }
}

std::vector<double> subspace_rotate(const Hamiltonian& h, MatC& X) {
  MatC HX;
  h.apply(X, HX);
  MatC G = overlap(X, HX);
  EighResult r = eigh(G);
  MatC Xr(X.rows(), X.cols());
  gemm(Op::kNone, Op::kNone, cd(1, 0), X, r.eigenvectors, cd(0, 0), Xr);
  X = std::move(Xr);
  return r.eigenvalues;
}

MatC random_wavefunctions(const GVectors& basis, int n_bands,
                          std::uint64_t seed) {
  Rng rng(seed);
  MatC psi(basis.count(), n_bands);
  for (int j = 0; j < n_bands; ++j) {
    for (int g = 0; g < basis.count(); ++g) {
      // Damp high-G components so the guess has low kinetic energy.
      const double damp = 1.0 / (1.0 + basis.g2(g));
      psi(g, j) = damp * cd(rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
  }
  orthonormalize_cholesky(psi);
  return psi;
}

namespace {

// The per-iteration scalar steps of the Davidson loop, shared verbatim by
// the per-fragment and batched drivers so the two paths are bit-identical
// by construction. Templated over the real type: the double instantiation
// is operation-for-operation the original code (the shims above forward
// to the same level-1 calls), and the float instantiation serves the
// mixed-precision fast path.

// Residuals R = HX - X diag(eps); returns the max column norm.
template <typename Real>
double residual_block(const Matrix<std::complex<Real>>& X,
                      const Matrix<std::complex<Real>>& HX,
                      const std::vector<double>& evals,
                      Matrix<std::complex<Real>>& R) {
  using C = std::complex<Real>;
  const int ng = X.rows(), nb = X.cols();
  std::copy(HX.data(), HX.data() + HX.size(), R.data());
  for (int j = 0; j < nb; ++j)
    axpy(ng, C(Real(-evals[j]), Real(0)), X.col(j), R.col(j));
  double max_res = 0;
  for (int j = 0; j < nb; ++j)
    max_res = std::max(max_res, nrm2(ng, R.col(j)));
  return max_res;
}

// Preconditioned correction block T from residuals R.
template <typename Real>
void correction_block(const GVectors& basis, bool precondition,
                      const Matrix<std::complex<Real>>& X,
                      const Matrix<std::complex<Real>>& R,
                      Matrix<std::complex<Real>>& T) {
  const int ng = X.rows(), nb = X.cols();
  for (int j = 0; j < nb; ++j) {
    if (precondition) {
      precondition_tpa(basis, band_kinetic(basis, X.col(j)), R.col(j),
                       T.col(j));
    } else {
      std::copy(R.col(j), R.col(j) + ng, T.col(j));
    }
  }
}

// New search space [X | accepted corrections]: corrections are
// Gram-Schmidt-appended one at a time; columns that are (numerically)
// linearly dependent are dropped, and the total is capped at Vn.cols()
// (== min(2nb, ng)) so the subspace can never exceed the full basis
// (small fragments can have very few plane waves). Returns the accepted
// column count; T is consumed. The dependence threshold scales with the
// precision: 1e-8 for double, 1e-4 for float (a float correction with a
// smaller surviving norm is rounding noise, not a direction).
template <typename Real>
int expand_search_space(const Matrix<std::complex<Real>>& X,
                        Matrix<std::complex<Real>>& T,
                        Matrix<std::complex<Real>>& Vn) {
  using C = std::complex<Real>;
  const double drop_tol = sizeof(Real) == sizeof(double) ? 1e-8 : 1e-4;
  const int ng = X.rows(), nb = X.cols();
  for (int j = 0; j < nb; ++j) std::copy(X.col(j), X.col(j) + ng, Vn.col(j));
  int cols = nb;
  for (int j = 0; j < nb && cols < Vn.cols(); ++j) {
    C* t = T.col(j);
    for (int pass = 0; pass < 2; ++pass)
      for (int k = 0; k < cols; ++k) {
        const C proj = dotc(ng, Vn.col(k), t);
        axpy(ng, -proj, Vn.col(k), t);
      }
    const double nrm = nrm2(ng, t);
    if (nrm < drop_tol) continue;  // dependent: drop
    scal(ng, C(Real(1.0 / nrm), Real(0)), t);
    std::copy(t, t + ng, Vn.col(cols));
    ++cols;
  }
  return cols;
}

}  // namespace

EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt,
                                 EigenWorkspace& ws) {
  const GVectors& basis = h.basis();
  const int ng = basis.count();
  const int nb = psi.cols();
  assert(psi.rows() == ng);
  assert(nb <= ng);

  // Reserve every slot at its per-solve maximum up front so later
  // (smaller) resizes can never grow storage mid-iteration.
  const int vmax = std::min(2 * nb, ng);
  ws.reserve(ng, nb, /*all_band=*/true);

  orthonormalize_cholesky(psi, ws.scratch());

  EigensolverResult result;
  MatC& X = ws.mat(kX, ng, nb);
  MatC& HX = ws.mat(kHX, ng, nb);
  MatC& R = ws.mat(kR, ng, nb);
  MatC& T = ws.mat(kT, ng, nb);
  MatC* V = &ws.mat(kV, ng, nb);  // current Ritz block (cols grow/shrink)
  std::copy(psi.data(), psi.data() + psi.size(), V->data());
  MatC& HV = ws.mat(kHV, ng, nb);
  h.apply(*V, HV);

  const auto rayleigh_ritz = [&]() {
    const int dim = V->cols();
    MatC& G = ws.mat(kG, dim, dim);
    gemm(Op::kConjTrans, Op::kNone, cd(1, 0), *V, HV, cd(0, 0), G);
    EighView eg = eigh(G, ws.scratch());
    // Keep the lowest nb Ritz vectors.
    MatC& Y = ws.mat(kY, dim, nb);
    for (int j = 0; j < nb; ++j)
      for (int i = 0; i < dim; ++i) Y(i, j) = (*eg.eigenvectors)(i, j);
    gemm(Op::kNone, Op::kNone, cd(1, 0), *V, Y, cd(0, 0), X);
    gemm(Op::kNone, Op::kNone, cd(1, 0), HV, Y, cd(0, 0), HX);
    result.eigenvalues.assign(eg.eigenvalues->begin(),
                              eg.eigenvalues->begin() + nb);
  };

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    TraceSpan sweep("davidson.sweep", TraceCat::kSolver, 1);
    result.iterations = iter + 1;

    // Rayleigh-Ritz in span(V).
    rayleigh_ritz();

    result.max_residual = residual_block(X, HX, result.eigenvalues, R);
    if (result.max_residual < opt.residual_tol) {
      result.converged = true;
      std::copy(X.data(), X.data() + X.size(), psi.data());
      return result;
    }

    correction_block(basis, opt.precondition, X, R, T);
    MatC& Vn = ws.mat(kVn, ng, vmax);
    const int cols = expand_search_space(X, T, Vn);
    if (cols == nb) {
      // No useful corrections left: the block is as converged as the
      // basis allows.
      result.converged = true;
      std::copy(X.data(), X.data() + X.size(), psi.data());
      return result;
    }
    V = &ws.mat(kV, ng, cols);
    for (int j = 0; j < cols; ++j)
      std::copy(Vn.col(j), Vn.col(j) + ng, V->col(j));
    h.apply(*V, HV);
  }

  // Not converged within budget: return the best current Ritz vectors.
  rayleigh_ritz();
  std::copy(X.data(), X.data() + X.size(), psi.data());
  return result;
}

namespace {

// Per-member bookkeeping of the lockstep drivers. Trivially destructible
// (pointers and scalars only) so it can live in the workspace's grow-only
// byte arena instead of a fresh vector per solve.
struct BatchMember {
  const Hamiltonian* h;
  MatC* psi;
  EigenWorkspace* ws;
  int ng, nb, vmax;
  int cols;  // current Ritz-block width
  bool done;
};

}  // namespace

std::vector<EigensolverResult> solve_all_band_batched(
    const std::vector<FragmentSolve>& frags, const EigensolverOptions& opt,
    BatchWorkspace& ws, int n_workers,
    const std::function<int()>& live_lanes) {
  using Member = BatchMember;
  const int k_members = static_cast<int>(frags.size());
  std::vector<EigensolverResult> results(k_members);
  if (k_members == 0) return results;

  // Live lane width: re-read at every sweep boundary. Every batched
  // kernel below is worker-count-invariant, so a width change between
  // sweeps can never change results — donation only moves wall time.
  const auto lanes = [&]() {
    return live_lanes ? std::max(1, live_lanes()) : n_workers;
  };

  Member* mem = static_cast<Member*>(
      ws.member_table(sizeof(Member) * static_cast<std::size_t>(k_members)));
  for (int i = 0; i < k_members; ++i) {
    Member& m = *new (mem + i) Member();
    m.h = frags[i].h;
    m.psi = frags[i].psi;
    m.ws = &ws.member(i);
    m.ng = m.h->basis().count();
    m.nb = m.psi->cols();
    m.vmax = std::min(2 * m.nb, m.ng);
    m.cols = m.nb;
    m.done = false;
    assert(m.psi->rows() == m.ng);
    assert(m.nb <= m.ng);
    assert(m.h->basis().grid_shape() == frags[0].h->basis().grid_shape());
  }

  std::vector<int>& active = ws.active;
  active.resize(k_members);
  std::iota(active.begin(), active.end(), 0);

  // Per-member setup: slot reservation, orthonormalization, V <- psi.
  parallel_for(k_members, lanes(), [&](int i, int /*worker*/) {
    Member& m = mem[i];
    m.ws->reserve(m.ng, m.nb, /*all_band=*/true);
    orthonormalize_cholesky(*m.psi, m.ws->scratch());
    MatC& V = m.ws->mat(kV, m.ng, m.nb);
    std::copy(m.psi->data(), m.psi->data() + m.psi->size(), V.data());
  });

  // One batched H application serves every active member. Each member
  // keeps its original workspace slot even after earlier members
  // converge out of the item list, so per-slot arena peaks never
  // regress.
  const auto batched_apply = [&](const std::vector<int>& who) {
    std::vector<Hamiltonian::ApplyItem>& items = ws.apply_items;
    items.clear();
    for (int i : who) {
      Member& m = mem[i];
      items.push_back({m.h, &m.ws->mat(kV, m.ng, m.cols),
                       &m.ws->mat(kHV, m.ng, m.cols), i});
    }
    Hamiltonian::apply_batched(items, ws.apply(), lanes());
  };

  // Rayleigh-Ritz across the active members: the subspace projection and
  // both Ritz rotations run as batched GEMMs; the dense eigh of each
  // small G stays per member (arena-backed), fanned out over members.
  const auto rayleigh_ritz = [&](const std::vector<int>& who) {
    std::vector<GemmBatchItem>& g_items = ws.g_items;
    g_items.clear();
    for (int i : who) {
      Member& m = mem[i];
      g_items.push_back({&m.ws->mat(kV, m.ng, m.cols),
                         &m.ws->mat(kHV, m.ng, m.cols),
                         &m.ws->mat(kG, m.cols, m.cols)});
    }
    gemm_batched(Op::kConjTrans, Op::kNone, cd(1, 0), g_items, cd(0, 0),
                 lanes());
    parallel_for(static_cast<int>(who.size()), lanes(),
                 [&](int a, int /*worker*/) {
                   Member& m = mem[who[a]];
                   EigensolverResult& res = results[who[a]];
                   const int dim = m.cols;
                   MatC& G = m.ws->mat(kG, dim, dim);
                   EighView eg = eigh(G, m.ws->scratch());
                   MatC& Y = m.ws->mat(kY, dim, m.nb);
                   for (int j = 0; j < m.nb; ++j)
                     for (int i2 = 0; i2 < dim; ++i2)
                       Y(i2, j) = (*eg.eigenvectors)(i2, j);
                   res.eigenvalues.assign(eg.eigenvalues->begin(),
                                          eg.eigenvalues->begin() + m.nb);
                 });
    std::vector<GemmBatchItem>& x_items = ws.x_items;
    std::vector<GemmBatchItem>& hx_items = ws.hx_items;
    x_items.clear();
    hx_items.clear();
    for (int i : who) {
      Member& m = mem[i];
      MatC& Y = m.ws->mat(kY, m.cols, m.nb);
      x_items.push_back(
          {&m.ws->mat(kV, m.ng, m.cols), &Y, &m.ws->mat(kX, m.ng, m.nb)});
      hx_items.push_back(
          {&m.ws->mat(kHV, m.ng, m.cols), &Y, &m.ws->mat(kHX, m.ng, m.nb)});
    }
    gemm_batched(Op::kNone, Op::kNone, cd(1, 0), x_items, cd(0, 0), lanes());
    gemm_batched(Op::kNone, Op::kNone, cd(1, 0), hx_items, cd(0, 0),
                 lanes());
  };

  batched_apply(active);

  for (int iter = 0; iter < opt.max_iterations && !active.empty(); ++iter) {
    TraceSpan sweep("davidson.sweep", TraceCat::kSolver, active.size());
    for (int i : active) results[i].iterations = iter + 1;

    rayleigh_ritz(active);

    // Per-member tail: residuals, convergence, preconditioning, search-
    // space expansion. Members are independent, so this fans out.
    parallel_for(static_cast<int>(active.size()), lanes(),
                 [&](int a, int /*worker*/) {
                   Member& m = mem[active[a]];
                   EigensolverResult& res = results[active[a]];
                   MatC& X = m.ws->mat(kX, m.ng, m.nb);
                   MatC& HX = m.ws->mat(kHX, m.ng, m.nb);
                   MatC& R = m.ws->mat(kR, m.ng, m.nb);
                   res.max_residual =
                       residual_block(X, HX, res.eigenvalues, R);
                   if (res.max_residual < opt.residual_tol) {
                     res.converged = true;
                     std::copy(X.data(), X.data() + X.size(),
                               m.psi->data());
                     m.done = true;
                     return;
                   }
                   MatC& T = m.ws->mat(kT, m.ng, m.nb);
                   correction_block(m.h->basis(), opt.precondition, X, R, T);
                   MatC& Vn = m.ws->mat(kVn, m.ng, m.vmax);
                   const int cols = expand_search_space(X, T, Vn);
                   if (cols == m.nb) {
                     res.converged = true;
                     std::copy(X.data(), X.data() + X.size(),
                               m.psi->data());
                     m.done = true;
                     return;
                   }
                   MatC& V = m.ws->mat(kV, m.ng, cols);
                   for (int j = 0; j < cols; ++j)
                     std::copy(Vn.col(j), Vn.col(j) + m.ng, V.col(j));
                   m.cols = cols;
                 });

    // Converged members drop out; the rest advance in lockstep (swap, not
    // move: both index buffers stay resident in the workspace).
    std::vector<int>& still = ws.still;
    still.clear();
    for (int i : active)
      if (!mem[i].done) still.push_back(i);
    active.swap(still);
    if (!active.empty()) batched_apply(active);
  }

  // Budget exhausted: return the best current Ritz vectors for whoever is
  // left (same final rotation the per-fragment driver performs).
  if (!active.empty()) {
    rayleigh_ritz(active);
    parallel_for(static_cast<int>(active.size()), lanes(),
                 [&](int a, int /*worker*/) {
                   Member& m = mem[active[a]];
                   MatC& X = m.ws->mat(kX, m.ng, m.nb);
                   std::copy(X.data(), X.data() + X.size(), m.psi->data());
                 });
  }
  ws.note_dispatch_capacity();
  return results;
}

std::vector<EigensolverResult> solve_all_band_batched_f32(
    const std::vector<FragmentSolve>& frags, const EigensolverOptions& opt,
    BatchWorkspace& ws, int n_workers,
    const std::function<int()>& live_lanes) {
  using Member = BatchMember;
  const int k_members = static_cast<int>(frags.size());
  std::vector<EigensolverResult> results(k_members);
  if (k_members == 0) return results;

  const auto lanes = [&]() {
    return live_lanes ? std::max(1, live_lanes()) : n_workers;
  };

  // fp32 residuals bottom out near its epsilon; chasing a tighter
  // tolerance would spin the loop on rounding noise (see eigensolver.h).
  const double tol = std::max(opt.residual_tol, 2e-5);

  Member* mem = static_cast<Member*>(
      ws.member_table(sizeof(Member) * static_cast<std::size_t>(k_members)));
  for (int i = 0; i < k_members; ++i) {
    Member& m = *new (mem + i) Member();
    m.h = frags[i].h;
    m.psi = frags[i].psi;
    m.ws = &ws.member(i);
    m.ng = m.h->basis().count();
    m.nb = m.psi->cols();
    m.vmax = std::min(2 * m.nb, m.ng);
    m.cols = m.nb;
    m.done = false;
    assert(m.psi->rows() == m.ng);
    assert(m.nb <= m.ng);
    assert(m.h->basis().grid_shape() == frags[0].h->basis().grid_shape());
  }

  std::vector<int>& active = ws.active;
  active.resize(k_members);
  std::iota(active.begin(), active.end(), 0);

  const auto round_to_f32 = [](const MatC& src, MatCF& dst) {
    const cd* s = src.data();
    cf* d = dst.data();
    for (std::size_t u = 0; u < src.size(); ++u) d[u] = cf(s[u]);
  };
  const auto store_psi = [](const MatCF& X, MatC& psi) {
    const cf* x = X.data();
    cd* p = psi.data();
    for (std::size_t u = 0; u < X.size(); ++u) p[u] = cd(x[u]);
  };

  // Per-member setup: double-precision orthonormalization of the guess
  // (identical to the fp64 driver — no float Cholesky needed), rounded
  // once into the fp32 Ritz block. The fp32 slots are reserved at their
  // per-solve maxima here, like EigenWorkspace::reserve does for the
  // double ones.
  parallel_for(k_members, lanes(), [&](int i, int /*worker*/) {
    Member& m = mem[i];
    m.ws->reserve(m.ng, m.nb, /*all_band=*/true);
    m.ws->mat_f32(kV, m.ng, m.vmax);
    m.ws->mat_f32(kHV, m.ng, m.vmax);
    m.ws->mat_f32(kVn, m.ng, m.vmax);
    m.ws->mat_f32(kX, m.ng, m.nb);
    m.ws->mat_f32(kHX, m.ng, m.nb);
    m.ws->mat_f32(kR, m.ng, m.nb);
    m.ws->mat_f32(kT, m.ng, m.nb);
    m.ws->mat_f32(kG, m.vmax, m.vmax);
    m.ws->mat_f32(kY, m.vmax, m.nb);
    orthonormalize_cholesky(*m.psi, m.ws->scratch());
    round_to_f32(*m.psi, m.ws->mat_f32(kV, m.ng, m.nb));
  });

  const auto batched_apply = [&](const std::vector<int>& who) {
    std::vector<Hamiltonian::ApplyItemF32>& items = ws.apply_items_f32;
    items.clear();
    for (int i : who) {
      Member& m = mem[i];
      items.push_back({m.h, &m.ws->mat_f32(kV, m.ng, m.cols),
                       &m.ws->mat_f32(kHV, m.ng, m.cols), i});
    }
    Hamiltonian::apply_batched_f32(items, ws.apply(), lanes());
  };

  // Rayleigh-Ritz: float batched GEMMs for the subspace projection and
  // both Ritz rotations; the tiny G is promoted to double for the dense
  // eigh (free next to the fp32 GEMMs, keeps the rotation
  // well-conditioned) and the rotation matrix rounded back to fp32.
  const auto rayleigh_ritz = [&](const std::vector<int>& who) {
    std::vector<GemmBatchItemF>& g_items = ws.g_items_f32;
    g_items.clear();
    for (int i : who) {
      Member& m = mem[i];
      g_items.push_back({&m.ws->mat_f32(kV, m.ng, m.cols),
                         &m.ws->mat_f32(kHV, m.ng, m.cols),
                         &m.ws->mat_f32(kG, m.cols, m.cols)});
    }
    gemm_batched(Op::kConjTrans, Op::kNone, cf(1, 0), g_items, cf(0, 0),
                 lanes());
    parallel_for(static_cast<int>(who.size()), lanes(),
                 [&](int a, int /*worker*/) {
                   Member& m = mem[who[a]];
                   EigensolverResult& res = results[who[a]];
                   const int dim = m.cols;
                   MatCF& Gf = m.ws->mat_f32(kG, dim, dim);
                   MatC& G = m.ws->mat(kG, dim, dim);
                   for (int j = 0; j < dim; ++j)
                     for (int i2 = 0; i2 < dim; ++i2)
                       G(i2, j) = cd(Gf(i2, j));
                   EighView eg = eigh(G, m.ws->scratch());
                   MatCF& Y = m.ws->mat_f32(kY, dim, m.nb);
                   for (int j = 0; j < m.nb; ++j)
                     for (int i2 = 0; i2 < dim; ++i2)
                       Y(i2, j) = cf((*eg.eigenvectors)(i2, j));
                   res.eigenvalues.assign(eg.eigenvalues->begin(),
                                          eg.eigenvalues->begin() + m.nb);
                 });
    std::vector<GemmBatchItemF>& x_items = ws.x_items_f32;
    std::vector<GemmBatchItemF>& hx_items = ws.hx_items_f32;
    x_items.clear();
    hx_items.clear();
    for (int i : who) {
      Member& m = mem[i];
      MatCF& Y = m.ws->mat_f32(kY, m.cols, m.nb);
      x_items.push_back({&m.ws->mat_f32(kV, m.ng, m.cols), &Y,
                         &m.ws->mat_f32(kX, m.ng, m.nb)});
      hx_items.push_back({&m.ws->mat_f32(kHV, m.ng, m.cols), &Y,
                          &m.ws->mat_f32(kHX, m.ng, m.nb)});
    }
    gemm_batched(Op::kNone, Op::kNone, cf(1, 0), x_items, cf(0, 0), lanes());
    gemm_batched(Op::kNone, Op::kNone, cf(1, 0), hx_items, cf(0, 0),
                 lanes());
  };

  batched_apply(active);

  for (int iter = 0; iter < opt.max_iterations && !active.empty(); ++iter) {
    TraceSpan sweep("davidson.sweep.f32", TraceCat::kSolver, active.size());
    for (int i : active) results[i].iterations = iter + 1;

    rayleigh_ritz(active);

    parallel_for(static_cast<int>(active.size()), lanes(),
                 [&](int a, int /*worker*/) {
                   Member& m = mem[active[a]];
                   EigensolverResult& res = results[active[a]];
                   MatCF& X = m.ws->mat_f32(kX, m.ng, m.nb);
                   MatCF& HX = m.ws->mat_f32(kHX, m.ng, m.nb);
                   MatCF& R = m.ws->mat_f32(kR, m.ng, m.nb);
                   res.max_residual =
                       residual_block(X, HX, res.eigenvalues, R);
                   if (res.max_residual < tol) {
                     res.converged = true;
                     store_psi(X, *m.psi);
                     m.done = true;
                     return;
                   }
                   MatCF& T = m.ws->mat_f32(kT, m.ng, m.nb);
                   correction_block(m.h->basis(), opt.precondition, X, R, T);
                   MatCF& Vn = m.ws->mat_f32(kVn, m.ng, m.vmax);
                   const int cols = expand_search_space(X, T, Vn);
                   if (cols == m.nb) {
                     res.converged = true;
                     store_psi(X, *m.psi);
                     m.done = true;
                     return;
                   }
                   MatCF& V = m.ws->mat_f32(kV, m.ng, cols);
                   for (int j = 0; j < cols; ++j)
                     std::copy(Vn.col(j), Vn.col(j) + m.ng, V.col(j));
                   m.cols = cols;
                 });

    std::vector<int>& still = ws.still;
    still.clear();
    for (int i : active)
      if (!mem[i].done) still.push_back(i);
    active.swap(still);
    if (!active.empty()) batched_apply(active);
  }

  if (!active.empty()) {
    rayleigh_ritz(active);
    parallel_for(static_cast<int>(active.size()), lanes(),
                 [&](int a, int /*worker*/) {
                   Member& m = mem[active[a]];
                   store_psi(m.ws->mat_f32(kX, m.ng, m.nb), *m.psi);
                 });
  }
  ws.note_dispatch_capacity();
  return results;
}

EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt) {
  EigenWorkspace ws;
  return solve_all_band(h, psi, opt, ws);
}

EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt,
                                     EigenWorkspace& ws) {
  const GVectors& basis = h.basis();
  const int ng = basis.count();
  const int nb = psi.cols();
  ws.reserve(ng, nb, /*all_band=*/false);
  orthonormalize_gram_schmidt(psi);

  EigensolverResult result;
  std::vector<cd>& hpsi = ws.vec(kHpsi, ng);
  std::vector<cd>& r = ws.vec(kRes, ng);
  std::vector<cd>& d = ws.vec(kDir, ng);
  std::vector<cd>& hd = ws.vec(kHDir, ng);
  std::vector<cd>& prev_d = ws.vec(kPrevDir, ng);
  double max_res = 0;

  for (int j = 0; j < nb; ++j) {
    cd* x = psi.col(j);
    bool have_prev = false;  // no CG history at the start of each band
    double prev_r2 = 0;

    // Orthogonalize the starting vector against the already-converged
    // lower bands (they moved since the initial Gram-Schmidt); otherwise
    // the minimization slides back into the lowest states.
    for (int k = 0; k < j; ++k) {
      const cd proj = zdotc(ng, psi.col(k), x);
      zaxpy(ng, -proj, psi.col(k), x);
    }
    {
      const double nrm = dznrm2(ng, x);
      if (nrm < 1e-12) {
        Rng rng(0xbadc0de + j);
        for (int g = 0; g < ng; ++g)
          x[g] = cd(rng.uniform(-1, 1), rng.uniform(-1, 1)) /
                 (1.0 + basis.g2(g));
        for (int k = 0; k < j; ++k) {
          const cd proj = zdotc(ng, psi.col(k), x);
          zaxpy(ng, -proj, psi.col(k), x);
        }
      }
      zscal(ng, cd(1.0 / dznrm2(ng, x), 0.0), x);
    }

    for (int step = 0; step < opt.max_iterations; ++step) {
      if (j == 0 && step == 0) result.iterations = 0;
      h.apply_band(x, hpsi.data());
      const double eps = zdotc(ng, x, hpsi.data()).real();
      // Residual, projected against all bands <= j (Gram-Schmidt style).
      for (int g = 0; g < ng; ++g) r[g] = hpsi[g] - eps * x[g];
      for (int k = 0; k <= j; ++k) {
        const cd proj = zdotc(ng, psi.col(k), r.data());
        zaxpy(ng, -proj, psi.col(k), r.data());
      }
      const double rn = dznrm2(ng, r.data());
      max_res = std::max(max_res, rn);
      if (rn < opt.residual_tol) break;

      // Preconditioned direction with Polak-Ribiere CG mixing.
      if (opt.precondition) {
        precondition_tpa(basis, band_kinetic(basis, x), r.data(), d.data());
      } else {
        std::copy(r.begin(), r.end(), d.begin());
      }
      const double r2 = zdotc(ng, r.data(), d.data()).real();
      if (have_prev && prev_r2 > 0) {
        const double beta = std::max(0.0, r2 / prev_r2);
        zaxpy(ng, cd(beta, 0.0), prev_d.data(), d.data());
      }
      std::copy(d.begin(), d.end(), prev_d.begin());
      have_prev = true;
      prev_r2 = r2;

      // Orthogonalize the direction to bands <= j and normalize.
      for (int k = 0; k <= j; ++k) {
        const cd proj = zdotc(ng, psi.col(k), d.data());
        zaxpy(ng, -proj, psi.col(k), d.data());
      }
      const double dn = dznrm2(ng, d.data());
      if (dn < 1e-14) break;
      zscal(ng, cd(1.0 / dn, 0.0), d.data());

      // Exact 2x2 Rayleigh-Ritz between x and the unit direction d.
      h.apply_band(d.data(), hd.data());
      const double add = zdotc(ng, d.data(), hd.data()).real();
      const cd axd = zdotc(ng, x, hd.data());
      MatC& h2 = ws.scratch().mat(EigenScratch::kA, 2, 2);
      h2(0, 0) = eps;
      h2(1, 1) = add;
      h2(0, 1) = axd;
      h2(1, 0) = std::conj(axd);
      EighView e2 = eigh(h2, ws.scratch());
      const cd c0 = (*e2.eigenvectors)(0, 0), c1 = (*e2.eigenvectors)(1, 0);
      for (int g = 0; g < ng; ++g) x[g] = c0 * x[g] + c1 * d[g];
      // Re-project against lower bands to stop rounding drift from
      // re-introducing converged components, then renormalize.
      for (int k = 0; k < j; ++k) {
        const cd proj = zdotc(ng, psi.col(k), x);
        zaxpy(ng, -proj, psi.col(k), x);
      }
      const double xn = dznrm2(ng, x);
      zscal(ng, cd(1.0 / xn, 0.0), x);
      result.iterations += 1;
    }
  }

  // Final subspace rotation sorts bands and returns eigenvalues.
  result.eigenvalues = subspace_rotate(h, psi);
  result.max_residual = max_res;
  result.converged = max_res < opt.residual_tol;
  return result;
}

EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt) {
  EigenWorkspace ws;
  return solve_band_by_band(h, psi, opt, ws);
}

}  // namespace ls3df
