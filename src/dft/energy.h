// Kohn-Sham total energy assembly:
//   E = T_s + E_NL + int V_ion rho + E_H[rho] + E_xc[rho] + E_Ewald
// with the jellium G = 0 convention shared by the Poisson solver, the
// local pseudopotential (regular q = 0 part kept) and the Ewald sum.
#pragma once

#include <vector>

#include "dft/hamiltonian.h"
#include "grid/field3d.h"

namespace ls3df {

struct EnergyBreakdown {
  double kinetic = 0;
  double nonlocal = 0;
  double local = 0;    // int V_ion(r) rho(r) d3r
  double hartree = 0;
  double xc = 0;
  double ewald = 0;
  double total = 0;
};

// `vion` must be the bare ionic local potential (not the effective one);
// rho the density of the given bands/occupations.
EnergyBreakdown total_energy(const Hamiltonian& h, const MatC& psi,
                             const std::vector<double>& occ,
                             const FieldR& rho, const FieldR& vion);

}  // namespace ls3df
