#include "dft/fsm.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "dft/eigensolver.h"
#include "fft/plan_cache.h"
#include "linalg/blas.h"
#include "linalg/eigen.h"

namespace ls3df {

using cd = std::complex<double>;

namespace {

// Apply the folded operator A = (H - eref)^2 to a block.
void apply_folded(const Hamiltonian& h, double eref, const MatC& psi,
                  MatC& out) {
  MatC tmp;
  h.apply(psi, tmp);
  for (int j = 0; j < psi.cols(); ++j)
    zaxpy(psi.rows(), cd(-eref, 0.0), psi.col(j), tmp.col(j));
  h.apply(tmp, out);
  for (int j = 0; j < psi.cols(); ++j)
    zaxpy(psi.rows(), cd(-eref, 0.0), tmp.col(j), out.col(j));
}

}  // namespace

FsmResult folded_spectrum(const Hamiltonian& h, const FsmOptions& opt) {
  const GVectors& basis = h.basis();
  const int ng = basis.count();
  const int nb = opt.n_states;

  FsmResult result;
  MatC V = random_wavefunctions(basis, nb, opt.seed);
  MatC AV(ng, nb);
  apply_folded(h, opt.eps_ref, V, AV);

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Rayleigh-Ritz on the folded operator.
    MatC G = overlap(V, AV);
    EighResult eg = eigh(G);
    const int dim = V.cols();
    MatC Y(dim, nb);
    for (int j = 0; j < nb; ++j)
      for (int i = 0; i < dim; ++i) Y(i, j) = eg.eigenvectors(i, j);
    MatC X(ng, nb), AX(ng, nb);
    gemm(Op::kNone, Op::kNone, cd(1, 0), V, Y, cd(0, 0), X);
    gemm(Op::kNone, Op::kNone, cd(1, 0), AV, Y, cd(0, 0), AX);
    result.folded_values.assign(eg.eigenvalues.begin(),
                                eg.eigenvalues.begin() + nb);

    MatC R = AX;
    for (int j = 0; j < nb; ++j)
      zaxpy(ng, cd(-result.folded_values[j], 0.0), X.col(j), R.col(j));
    double max_res = 0;
    for (int j = 0; j < nb; ++j)
      max_res = std::max(max_res, dznrm2(ng, R.col(j)));
    if (max_res < opt.residual_tol || iter == opt.max_iterations - 1) {
      result.converged = max_res < opt.residual_tol;
      V = std::move(X);
      break;
    }

    // Preconditioned expansion: scale residuals by the inverse folded
    // kinetic diagonal, (0.5 g^2 - eref)^2 + shift.
    MatC T(ng, nb);
    for (int j = 0; j < nb; ++j) {
      const cd* r = R.col(j);
      cd* t = T.col(j);
      for (int g = 0; g < ng; ++g) {
        const double k = 0.5 * basis.g2(g) - opt.eps_ref;
        t[g] = r[g] / (k * k + 0.5);
      }
    }
    // Expand with independent corrections only, capped at the basis size
    // (same robust scheme as solve_all_band).
    MatC Vn(ng, std::min(2 * nb, ng));
    for (int j = 0; j < nb; ++j) std::copy(X.col(j), X.col(j) + ng, Vn.col(j));
    int cols = nb;
    for (int j = 0; j < nb && cols < Vn.cols(); ++j) {
      cd* t = T.col(j);
      for (int pass = 0; pass < 2; ++pass)
        for (int k = 0; k < cols; ++k) {
          const cd proj = zdotc(ng, Vn.col(k), t);
          zaxpy(ng, -proj, Vn.col(k), t);
        }
      const double nrm = dznrm2(ng, t);
      if (nrm < 1e-8) continue;
      zscal(ng, cd(1.0 / nrm, 0.0), t);
      std::copy(t, t + ng, Vn.col(cols));
      ++cols;
    }
    if (cols == nb) {
      V = std::move(X);
      break;
    }
    MatC Vt(ng, cols);
    for (int j = 0; j < cols; ++j)
      std::copy(Vn.col(j), Vn.col(j) + ng, Vt.col(j));
    V = std::move(Vt);
    AV.resize(ng, V.cols());
    apply_folded(h, opt.eps_ref, V, AV);
  }

  // Diagonalize H within the converged window subspace so the returned
  // states are true band approximations with definite energies.
  MatC HV;
  h.apply(V, HV);
  MatC Hs = overlap(V, HV);
  EighResult eh = eigh(Hs);
  MatC Xf(ng, nb);
  gemm(Op::kNone, Op::kNone, cd(1, 0), V, eh.eigenvectors, cd(0, 0), Xf);
  result.psi = std::move(Xf);
  result.eigenvalues = eh.eigenvalues;

  // Recompute folded values in the rotated basis for reporting.
  for (int j = 0; j < nb; ++j) {
    const double d = result.eigenvalues[j] - opt.eps_ref;
    result.folded_values[j] = d * d;
  }
  return result;
}

FieldR band_density(const Hamiltonian& h, const cd* band) {
  const GVectors& basis = h.basis();
  FieldC work(basis.grid_shape());
  basis.scatter(band, work);
  const Fft3D& fft = fft_plan(basis.grid_shape());
  fft.inverse(work.raw());
  FieldR rho(basis.grid_shape());
  double total = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    rho[i] = std::norm(work[i]);
    total += rho[i];
  }
  const double point_vol = basis.lattice().volume() /
                           static_cast<double>(rho.size());
  if (total > 0) rho *= 1.0 / (total * point_vol);
  return rho;
}

double species_weight_enrichment(const Hamiltonian& h, const cd* band,
                                 Species sp, double radius) {
  const Structure& s = h.structure();
  FieldR rho = band_density(h, band);
  const Vec3i shape = rho.shape();
  const Lattice& lat = h.basis().lattice();
  const Vec3d L = lat.lengths();
  const double point_vol = lat.volume() / static_cast<double>(rho.size());

  double weight = 0;
  long points_near = 0;
  for (int ix = 0; ix < shape.x; ++ix)
    for (int iy = 0; iy < shape.y; ++iy)
      for (int iz = 0; iz < shape.z; ++iz) {
        const Vec3d r{ix * L.x / shape.x, iy * L.y / shape.y,
                      iz * L.z / shape.z};
        bool near = false;
        for (const auto& atom : s.atoms()) {
          if (atom.species != sp) continue;
          if (lat.min_image(atom.position, r).norm() <= radius) {
            near = true;
            break;
          }
        }
        if (near) {
          weight += rho(ix, iy, iz) * point_vol;
          ++points_near;
        }
      }
  if (points_near == 0) return 0.0;
  const double vol_frac =
      static_cast<double>(points_near) / static_cast<double>(rho.size());
  return weight / vol_frac;
}

double inverse_participation_ratio(const Hamiltonian& h, const cd* band) {
  const GVectors& basis = h.basis();
  FieldC work(basis.grid_shape());
  basis.scatter(band, work);
  const Fft3D& fft = fft_plan(basis.grid_shape());
  fft.inverse(work.raw());
  double sum2 = 0, sum4 = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double p = std::norm(work[i]);
    sum2 += p;
    sum4 += p * p;
  }
  const double n = static_cast<double>(work.size());
  if (sum2 <= 0) return 0.0;
  return n * sum4 / (sum2 * sum2);
}

}  // namespace ls3df
