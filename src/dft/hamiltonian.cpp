#include "dft/hamiltonian.h"

#include <cassert>
#include <cmath>

#include "common/constants.h"
#include "fft/plan_cache.h"
#include "linalg/blas.h"
#include "parallel/thread_pool.h"

namespace ls3df {

using cd = std::complex<double>;

cd* ApplyBatchWorkspace::grid_stack(std::size_t n) {
  // Grow-only, like Matrix::reshape: the stack is fully written before
  // it is read, so a shrink-then-regrow cycle (members converging out,
  // then the next SCF iteration starting over) must not pay a zero-fill
  // sweep over the regrown region.
  if (n > stack_peak_) {
    stack_peak_ = n;
    ++allocs_;
    stack_.resize(n);
  }
  return stack_.data();
}

MatC& ApplyBatchWorkspace::proj(int member, int rows, int cols) {
  assert(member >= 0);
  while (static_cast<int>(proj_.size()) <= member) {
    proj_.emplace_back();
    proj_peak_.push_back(0);
  }
  const std::size_t need = static_cast<std::size_t>(rows) * cols;
  if (need > proj_peak_[member]) {
    proj_peak_[member] = need;
    ++allocs_;
  }
  proj_[member].reshape(rows, cols);
  return proj_[member];
}

std::complex<float>* ApplyBatchWorkspace::grid_stack_f32(std::size_t n) {
  if (n > stack_f32_peak_) {
    stack_f32_peak_ = n;
    ++allocs_;
    stack_f32_.resize(n);
  }
  return stack_f32_.data();
}

MatCF& ApplyBatchWorkspace::proj_f32(int member, int rows, int cols) {
  assert(member >= 0);
  while (static_cast<int>(proj_f32_.size()) <= member) {
    proj_f32_.emplace_back();
    proj_f32_peak_.push_back(0);
  }
  const std::size_t need = static_cast<std::size_t>(rows) * cols;
  if (need > proj_f32_peak_[member]) {
    proj_f32_peak_[member] = need;
    ++allocs_;
  }
  proj_f32_[member].reshape(rows, cols);
  return proj_f32_[member];
}

void ApplyBatchWorkspace::note_dispatch_capacity() {
  const std::size_t cap = off.capacity() + member_of.capacity() +
                          nl_members.capacity() + overlap_items.capacity() +
                          accum_items.capacity() +
                          overlap_items_f32.capacity() +
                          accum_items_f32.capacity();
  if (cap > dispatch_peak_) {
    dispatch_peak_ = cap;
    ++allocs_;
  }
}

Vec3i default_fft_grid(const Lattice& lat, double ecut_hartree) {
  const double gmax = std::sqrt(2.0 * ecut_hartree);
  const Vec3d b = lat.reciprocal();
  Vec3i shape;
  for (int i = 0; i < 3; ++i) {
    const int m = static_cast<int>(std::ceil(gmax / b[i]));
    shape[i] = Fft1D::good_fft_size(4 * m + 2);
  }
  return shape;
}

Hamiltonian::Hamiltonian(const Structure& s, const GVectors& basis)
    : structure_(s),
      basis_(std::make_unique<GVectors>(basis)),
      fft_(basis.grid_shape()),
      vloc_(build_local_potential(s, basis.grid_shape())),
      nl_(std::make_unique<NonlocalKB>(s, basis)),
      work_(basis.grid_shape()) {}

void Hamiltonian::set_local_potential(const FieldR& v) {
  assert(v.shape() == basis_->grid_shape());
  vloc_ = v;
  vloc_f32_valid_ = false;  // fp32 mirror re-rounds on next f32 apply
}

void Hamiltonian::ensure_f32_mirrors() const {
  if (g2_f32_.empty()) {
    const int ng = basis_->count();
    g2_f32_.resize(ng);
    for (int g = 0; g < ng; ++g)
      g2_f32_[g] = static_cast<float>(basis_->g2(g));
    const MatC& B = nl_->projectors();
    projectors_f32_.reshape(B.rows(), B.cols());
    for (int j = 0; j < B.cols(); ++j)
      for (int i = 0; i < B.rows(); ++i)
        projectors_f32_(i, j) = std::complex<float>(B(i, j));
    const std::vector<double>& d = nl_->strengths();
    strengths_f32_.resize(d.size());
    for (std::size_t p = 0; p < d.size(); ++p)
      strengths_f32_[p] = static_cast<float>(d[p]);
  }
  if (!vloc_f32_valid_) {
    vloc_f32_.resize(vloc_.size());
    for (std::size_t i = 0; i < vloc_.size(); ++i)
      vloc_f32_[i] = static_cast<float>(vloc_[i]);
    vloc_f32_valid_ = true;
  }
}

void Hamiltonian::apply_local(const cd* in, cd* out) const {
  basis_->scatter(in, work_);
  fft_.inverse(work_.raw());
  for (std::size_t i = 0; i < work_.size(); ++i) work_[i] *= vloc_[i];
  fft_.forward(work_.raw());
  basis_->gather(work_, out);
  if (flops_) {
    const Vec3i g = basis_->grid_shape();
    flops_->add(2 * FlopCounter::fft3d(g.x, g.y, g.z) + 6 * work_.size());
  }
}

void Hamiltonian::apply(const MatC& psi, MatC& hpsi) const {
  const int ng = basis_->count(), nb = psi.cols();
  assert(psi.rows() == ng);
  hpsi.reshape(ng, nb);  // every element is written below; skip zero-fill
  // Local potential: per-band FFTs.
  for (int j = 0; j < nb; ++j) apply_local(psi.col(j), hpsi.col(j));
  // Kinetic: diagonal in q-space.
  for (int j = 0; j < nb; ++j) {
    cd* h = hpsi.col(j);
    const cd* p = psi.col(j);
    for (int g = 0; g < ng; ++g) h[g] += 0.5 * basis_->g2(g) * p[g];
  }
  // Nonlocal: BLAS-3 over the whole block.
  nl_->apply_all_bands(psi, hpsi);
  if (flops_) {
    flops_->add(4ull * ng * nb);  // kinetic
    flops_->add(2 * FlopCounter::zgemm(nl_->num_projectors(), nb, ng));
  }
}

void Hamiltonian::apply_batched(const std::vector<ApplyItem>& items,
                                ApplyBatchWorkspace& ws, int n_workers) {
  const int k_members = static_cast<int>(items.size());
  if (k_members == 0) return;
  const Vec3i shape = items[0].h->basis().grid_shape();
  const std::size_t gsize =
      static_cast<std::size_t>(shape.x) * shape.y * shape.z;

  // Grid-stack layout: member i's bands occupy grids [off[i], off[i+1]).
  // off/member_of live in the workspace so a steady-state dispatch
  // allocates nothing (assign reuses capacity).
  std::vector<int>& off = ws.off;
  off.assign(k_members + 1, 0);
  for (int t = 0; t < k_members; ++t) {
    const ApplyItem& it = items[t];
    assert(it.h && it.psi && it.hpsi);
    assert(it.h->basis().grid_shape() == shape);
    assert(it.psi->rows() == it.h->basis().count());
    off[t + 1] = off[t] + it.psi->cols();
    it.hpsi->reshape(it.psi->rows(), it.psi->cols());
  }
  const int total = off[k_members];
  if (total == 0) return;
  cd* stack = ws.grid_stack(static_cast<std::size_t>(total) * gsize);
  std::vector<int>& member_of = ws.member_of;
  member_of.assign(total, 0);
  for (int t = 0; t < k_members; ++t)
    for (int u = off[t]; u < off[t + 1]; ++u) member_of[u] = t;

  // Local potential, batched: scatter every band, one inverse sweep,
  // multiply by each member's V_loc, one forward sweep, gather. The
  // per-band sequence is exactly apply_local()'s.
  parallel_for(total, n_workers, [&](int u, int /*worker*/) {
    const int t = member_of[u];
    const ApplyItem& it = items[t];
    it.h->basis().scatter(it.psi->col(u - off[t]), stack + u * gsize);
  });
  fft_inverse_many(shape, stack, total, n_workers);
  parallel_for(total, n_workers, [&](int u, int /*worker*/) {
    const FieldR& vloc = items[member_of[u]].h->local_potential();
    cd* grid = stack + u * gsize;
    for (std::size_t i = 0; i < gsize; ++i) grid[i] *= vloc[i];
  });
  fft_forward_many(shape, stack, total, n_workers);
  parallel_for(total, n_workers, [&](int u, int /*worker*/) {
    const int t = member_of[u];
    const ApplyItem& it = items[t];
    const GVectors& basis = it.h->basis();
    const int j = u - off[t];
    cd* h = it.hpsi->col(j);
    basis.gather(stack + u * gsize, h);
    // Kinetic: diagonal in q-space (same expression as apply()).
    const cd* p = it.psi->col(j);
    for (int g = 0; g < basis.count(); ++g) h[g] += 0.5 * basis.g2(g) * p[g];
  });

  // Nonlocal, batched: P_t = B_t^H psi_t, scale rows by the KB strengths,
  // hpsi_t += B_t P_t — the two GEMMs of NonlocalKB::apply_all_bands
  // fused across members.
  std::vector<GemmBatchItem>& overlap_items = ws.overlap_items;
  std::vector<GemmBatchItem>& accum_items = ws.accum_items;
  std::vector<int>& nl_members = ws.nl_members;
  overlap_items.clear();
  accum_items.clear();
  nl_members.clear();
  for (int t = 0; t < k_members; ++t) {
    const NonlocalKB& nl = items[t].h->nonlocal();
    if (nl.num_projectors() == 0) continue;
    const int slot = items[t].slot >= 0 ? items[t].slot : t;
    MatC& P = ws.proj(slot, nl.num_projectors(), items[t].psi->cols());
    overlap_items.push_back({&nl.projectors(), items[t].psi, &P});
    accum_items.push_back({&nl.projectors(), &P, items[t].hpsi});
    nl_members.push_back(t);
  }
  if (!overlap_items.empty()) {
    gemm_batched(Op::kConjTrans, Op::kNone, cd(1, 0), overlap_items, cd(0, 0),
                 n_workers);
    parallel_for(static_cast<int>(nl_members.size()), n_workers,
                 [&](int m, int /*worker*/) {
                   const int t = nl_members[m];
                   const NonlocalKB& nl = items[t].h->nonlocal();
                   MatC& P = *overlap_items[m].c;
                   const std::vector<double>& d = nl.strengths();
                   for (int j = 0; j < P.cols(); ++j)
                     for (int p = 0; p < P.rows(); ++p) P(p, j) *= d[p];
                 });
    gemm_batched(Op::kNone, Op::kNone, cd(1, 0), accum_items, cd(1, 0),
                 n_workers);
  }

  // Flop accounting mirrors apply() per member.
  for (int t = 0; t < k_members; ++t) {
    const ApplyItem& it = items[t];
    if (!it.h->flops_) continue;
    const int ng = it.h->basis().count(), nb = it.psi->cols();
    it.h->flops_->add(static_cast<unsigned long long>(nb) *
                      (2 * FlopCounter::fft3d(shape.x, shape.y, shape.z) +
                       6 * gsize));
    it.h->flops_->add(4ull * ng * nb);
    it.h->flops_->add(
        2 * FlopCounter::zgemm(it.h->nl_->num_projectors(), nb, ng));
  }
  ws.note_dispatch_capacity();
}

void Hamiltonian::apply_batched_f32(const std::vector<ApplyItemF32>& items,
                                    ApplyBatchWorkspace& ws, int n_workers) {
  using cf = std::complex<float>;
  const int k_members = static_cast<int>(items.size());
  if (k_members == 0) return;
  const Vec3i shape = items[0].h->basis().grid_shape();
  const std::size_t gsize =
      static_cast<std::size_t>(shape.x) * shape.y * shape.z;

  // Mirrors first, serially: the parallel body below reads each member's
  // fp32 V_loc / |G|^2 / projectors concurrently from several lanes.
  for (const ApplyItemF32& it : items) it.h->ensure_f32_mirrors();

  std::vector<int>& off = ws.off;
  off.assign(k_members + 1, 0);
  for (int t = 0; t < k_members; ++t) {
    const ApplyItemF32& it = items[t];
    assert(it.h && it.psi && it.hpsi);
    assert(it.h->basis().grid_shape() == shape);
    assert(it.psi->rows() == it.h->basis().count());
    off[t + 1] = off[t] + it.psi->cols();
    it.hpsi->reshape(it.psi->rows(), it.psi->cols());
  }
  const int total = off[k_members];
  if (total == 0) return;
  cf* stack = ws.grid_stack_f32(static_cast<std::size_t>(total) * gsize);
  std::vector<int>& member_of = ws.member_of;
  member_of.assign(total, 0);
  for (int t = 0; t < k_members; ++t)
    for (int u = off[t]; u < off[t + 1]; ++u) member_of[u] = t;

  // Local potential: same scatter / inverse / multiply / forward / gather
  // sweep as the double path, on single-precision plans and grids.
  parallel_for(total, n_workers, [&](int u, int /*worker*/) {
    const int t = member_of[u];
    const ApplyItemF32& it = items[t];
    it.h->basis().scatter(it.psi->col(u - off[t]), stack + u * gsize);
  });
  fft_inverse_many(shape, stack, total, n_workers);
  parallel_for(total, n_workers, [&](int u, int /*worker*/) {
    const std::vector<float>& vloc = items[member_of[u]].h->vloc_f32_;
    cf* grid = stack + u * gsize;
    for (std::size_t i = 0; i < gsize; ++i) grid[i] *= vloc[i];
  });
  fft_forward_many(shape, stack, total, n_workers);
  parallel_for(total, n_workers, [&](int u, int /*worker*/) {
    const int t = member_of[u];
    const ApplyItemF32& it = items[t];
    const GVectors& basis = it.h->basis();
    const std::vector<float>& g2 = it.h->g2_f32_;
    const int j = u - off[t];
    cf* h = it.hpsi->col(j);
    basis.gather(stack + u * gsize, h);
    const cf* p = it.psi->col(j);
    for (int g = 0; g < basis.count(); ++g) h[g] += 0.5f * g2[g] * p[g];
  });

  // Nonlocal: the two fused GEMMs on the fp32 projector mirrors.
  std::vector<GemmBatchItemF>& overlap_items = ws.overlap_items_f32;
  std::vector<GemmBatchItemF>& accum_items = ws.accum_items_f32;
  std::vector<int>& nl_members = ws.nl_members;
  overlap_items.clear();
  accum_items.clear();
  nl_members.clear();
  for (int t = 0; t < k_members; ++t) {
    const NonlocalKB& nl = items[t].h->nonlocal();
    if (nl.num_projectors() == 0) continue;
    const int slot = items[t].slot >= 0 ? items[t].slot : t;
    MatCF& P =
        ws.proj_f32(slot, nl.num_projectors(), items[t].psi->cols());
    overlap_items.push_back({&items[t].h->projectors_f32_, items[t].psi, &P});
    accum_items.push_back({&items[t].h->projectors_f32_, &P, items[t].hpsi});
    nl_members.push_back(t);
  }
  if (!overlap_items.empty()) {
    gemm_batched(Op::kConjTrans, Op::kNone, cf(1, 0), overlap_items, cf(0, 0),
                 n_workers);
    parallel_for(static_cast<int>(nl_members.size()), n_workers,
                 [&](int m, int /*worker*/) {
                   const int t = nl_members[m];
                   const std::vector<float>& d = items[t].h->strengths_f32_;
                   MatCF& P = *overlap_items[m].c;
                   for (int j = 0; j < P.cols(); ++j)
                     for (int p = 0; p < P.rows(); ++p) P(p, j) *= d[p];
                 });
    gemm_batched(Op::kNone, Op::kNone, cf(1, 0), accum_items, cf(1, 0),
                 n_workers);
  }

  // Flop accounting: same analytic counts as the double path (the counter
  // tracks operations, not operand width).
  for (int t = 0; t < k_members; ++t) {
    const ApplyItemF32& it = items[t];
    if (!it.h->flops_) continue;
    const int ng = it.h->basis().count(), nb = it.psi->cols();
    it.h->flops_->add(static_cast<unsigned long long>(nb) *
                      (2 * FlopCounter::fft3d(shape.x, shape.y, shape.z) +
                       6 * gsize));
    it.h->flops_->add(4ull * ng * nb);
    it.h->flops_->add(
        2 * FlopCounter::zgemm(it.h->nl_->num_projectors(), nb, ng));
  }
  ws.note_dispatch_capacity();
}

void Hamiltonian::apply_band(const cd* psi, cd* hpsi) const {
  const int ng = basis_->count();
  apply_local(psi, hpsi);
  for (int g = 0; g < ng; ++g) hpsi[g] += 0.5 * basis_->g2(g) * psi[g];
  nl_->apply_one_band(psi, hpsi);
  if (flops_) {
    flops_->add(4ull * ng);
    flops_->add(2 * FlopCounter::zgemm(nl_->num_projectors(), 1, ng));
  }
}

double Hamiltonian::kinetic_energy(const MatC& psi,
                                   const std::vector<double>& occ) const {
  const int ng = basis_->count(), nb = psi.cols();
  assert(static_cast<int>(occ.size()) == nb);
  double e = 0;
  for (int j = 0; j < nb; ++j) {
    const cd* p = psi.col(j);
    double ej = 0;
    for (int g = 0; g < ng; ++g) ej += 0.5 * basis_->g2(g) * std::norm(p[g]);
    e += occ[j] * ej;
  }
  return e;
}

FieldR Hamiltonian::kinetic_energy_density(
    const MatC& psi, const std::vector<double>& occ) const {
  const Vec3i shape = basis_->grid_shape();
  const int ng = basis_->count(), nb = psi.cols();
  const double inv_vol = 1.0 / basis_->lattice().volume();
  FieldR tau(shape);
  std::vector<cd> grad(ng);
  FieldC& work = work_;
  for (int j = 0; j < nb; ++j) {
    if (occ[j] == 0.0) continue;
    for (int dim = 0; dim < 3; ++dim) {
      const cd* p = psi.col(j);
      for (int g = 0; g < ng; ++g) grad[g] = cd(0, 1) * basis_->g(g)[dim] * p[g];
      basis_->scatter(grad.data(), work);
      fft_.inverse(work.raw());
      // Same normalization as density(): grid value = (1/N) sum_G (...),
      // so |grad psi(r)|^2 = N^2 |work(r)|^2 / V.
      const double scale = 0.5 * occ[j] * inv_vol *
                           static_cast<double>(work.size()) *
                           static_cast<double>(work.size());
      for (std::size_t i = 0; i < tau.size(); ++i)
        tau[i] += scale * std::norm(work[i]);
    }
  }
  return tau;
}

FieldR Hamiltonian::density(const MatC& psi,
                            const std::vector<double>& occ) const {
  FieldR rho(basis_->grid_shape());
  density_into(psi, occ, rho);
  return rho;
}

void Hamiltonian::density_into(const MatC& psi,
                               const std::vector<double>& occ,
                               FieldR& rho, int n_workers) const {
  const Vec3i shape = basis_->grid_shape();
  const int nb = psi.cols();
  assert(static_cast<int>(occ.size()) == nb);
  assert(rho.shape() == shape);
  rho.fill(0.0);
  const std::size_t ngrid = fft_.size();
  // Occupied bands only drive the transforms.
  std::vector<int> bands;
  bands.reserve(nb);
  for (int j = 0; j < nb; ++j)
    if (occ[j] != 0.0) bands.push_back(j);
  if (bands.empty()) return;

  const double inv_vol = 1.0 / basis_->lattice().volume();
  // inverse FFT includes 1/N: grid(r) = (1/N) sum_G c_G e^{iGr}. A
  // normalized band (sum |c|^2 = 1) has  int |psi|^2 = 1 with
  // psi(r) = sum_G c_G e^{iGr} / sqrt(V), so |psi(r)|^2 =
  // N^2 |grid(r)|^2 / V.
  const auto accumulate_band = [&](int j, const std::complex<double>* grid) {
    const double scale = occ[j] * inv_vol * static_cast<double>(ngrid) *
                         static_cast<double>(ngrid);
    for (std::size_t i = 0; i < rho.size(); ++i)
      rho[i] += scale * std::norm(grid[i]);
    if (flops_) {
      const Vec3i g = shape;
      flops_->add(FlopCounter::fft3d(g.x, g.y, g.z) + 3 * rho.size());
    }
  };

  if (n_workers <= 1) {
    // Serial: stream band by band through the single work_ grid — the
    // sweep would loop anyway, so don't pay the per-band stack memory.
    FieldC& work = work_;
    for (int j : bands) {
      basis_->scatter(psi.col(j), work);
      fft_.inverse(work.raw());
      accumulate_band(j, work.data());
    }
    return;
  }

  // Parallel: scatter every occupied band into the contiguous grow-only
  // stack, run one many-transform inverse sweep over the worker lanes,
  // then accumulate |psi|^2 in band order. Per-band arithmetic and the
  // accumulation order match the streaming path exactly, so both are
  // bit-identical for any n_workers.
  if (density_stack_.size() < bands.size() * ngrid)
    density_stack_.resize(bands.size() * ngrid);
  for (std::size_t k = 0; k < bands.size(); ++k)
    basis_->scatter(psi.col(bands[k]), density_stack_.data() + k * ngrid);
  fft_.inverse_many(density_stack_.data(), static_cast<int>(bands.size()),
                    n_workers);
  for (std::size_t k = 0; k < bands.size(); ++k)
    accumulate_band(bands[k], density_stack_.data() + k * ngrid);
}

}  // namespace ls3df
