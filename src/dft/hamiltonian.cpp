#include "dft/hamiltonian.h"

#include <cassert>
#include <cmath>

#include "common/constants.h"
#include "linalg/blas.h"

namespace ls3df {

using cd = std::complex<double>;

Vec3i default_fft_grid(const Lattice& lat, double ecut_hartree) {
  const double gmax = std::sqrt(2.0 * ecut_hartree);
  const Vec3d b = lat.reciprocal();
  Vec3i shape;
  for (int i = 0; i < 3; ++i) {
    const int m = static_cast<int>(std::ceil(gmax / b[i]));
    shape[i] = Fft1D::good_fft_size(4 * m + 2);
  }
  return shape;
}

Hamiltonian::Hamiltonian(const Structure& s, const GVectors& basis)
    : structure_(s),
      basis_(std::make_unique<GVectors>(basis)),
      fft_(basis.grid_shape()),
      vloc_(build_local_potential(s, basis.grid_shape())),
      nl_(std::make_unique<NonlocalKB>(s, basis)),
      work_(basis.grid_shape()) {}

void Hamiltonian::set_local_potential(const FieldR& v) {
  assert(v.shape() == basis_->grid_shape());
  vloc_ = v;
}

void Hamiltonian::apply_local(const cd* in, cd* out) const {
  basis_->scatter(in, work_);
  fft_.inverse(work_.raw());
  for (std::size_t i = 0; i < work_.size(); ++i) work_[i] *= vloc_[i];
  fft_.forward(work_.raw());
  basis_->gather(work_, out);
  if (flops_) {
    const Vec3i g = basis_->grid_shape();
    flops_->add(2 * FlopCounter::fft3d(g.x, g.y, g.z) + 6 * work_.size());
  }
}

void Hamiltonian::apply(const MatC& psi, MatC& hpsi) const {
  const int ng = basis_->count(), nb = psi.cols();
  assert(psi.rows() == ng);
  hpsi.reshape(ng, nb);  // every element is written below; skip zero-fill
  // Local potential: per-band FFTs.
  for (int j = 0; j < nb; ++j) apply_local(psi.col(j), hpsi.col(j));
  // Kinetic: diagonal in q-space.
  for (int j = 0; j < nb; ++j) {
    cd* h = hpsi.col(j);
    const cd* p = psi.col(j);
    for (int g = 0; g < ng; ++g) h[g] += 0.5 * basis_->g2(g) * p[g];
  }
  // Nonlocal: BLAS-3 over the whole block.
  nl_->apply_all_bands(psi, hpsi);
  if (flops_) {
    flops_->add(4ull * ng * nb);  // kinetic
    flops_->add(2 * FlopCounter::zgemm(nl_->num_projectors(), nb, ng));
  }
}

void Hamiltonian::apply_band(const cd* psi, cd* hpsi) const {
  const int ng = basis_->count();
  apply_local(psi, hpsi);
  for (int g = 0; g < ng; ++g) hpsi[g] += 0.5 * basis_->g2(g) * psi[g];
  nl_->apply_one_band(psi, hpsi);
  if (flops_) {
    flops_->add(4ull * ng);
    flops_->add(2 * FlopCounter::zgemm(nl_->num_projectors(), 1, ng));
  }
}

double Hamiltonian::kinetic_energy(const MatC& psi,
                                   const std::vector<double>& occ) const {
  const int ng = basis_->count(), nb = psi.cols();
  assert(static_cast<int>(occ.size()) == nb);
  double e = 0;
  for (int j = 0; j < nb; ++j) {
    const cd* p = psi.col(j);
    double ej = 0;
    for (int g = 0; g < ng; ++g) ej += 0.5 * basis_->g2(g) * std::norm(p[g]);
    e += occ[j] * ej;
  }
  return e;
}

FieldR Hamiltonian::kinetic_energy_density(
    const MatC& psi, const std::vector<double>& occ) const {
  const Vec3i shape = basis_->grid_shape();
  const int ng = basis_->count(), nb = psi.cols();
  const double inv_vol = 1.0 / basis_->lattice().volume();
  FieldR tau(shape);
  std::vector<cd> grad(ng);
  FieldC& work = work_;
  for (int j = 0; j < nb; ++j) {
    if (occ[j] == 0.0) continue;
    for (int dim = 0; dim < 3; ++dim) {
      const cd* p = psi.col(j);
      for (int g = 0; g < ng; ++g) grad[g] = cd(0, 1) * basis_->g(g)[dim] * p[g];
      basis_->scatter(grad.data(), work);
      fft_.inverse(work.raw());
      // Same normalization as density(): grid value = (1/N) sum_G (...),
      // so |grad psi(r)|^2 = N^2 |work(r)|^2 / V.
      const double scale = 0.5 * occ[j] * inv_vol *
                           static_cast<double>(work.size()) *
                           static_cast<double>(work.size());
      for (std::size_t i = 0; i < tau.size(); ++i)
        tau[i] += scale * std::norm(work[i]);
    }
  }
  return tau;
}

FieldR Hamiltonian::density(const MatC& psi,
                            const std::vector<double>& occ) const {
  FieldR rho(basis_->grid_shape());
  density_into(psi, occ, rho);
  return rho;
}

void Hamiltonian::density_into(const MatC& psi,
                               const std::vector<double>& occ,
                               FieldR& rho) const {
  const Vec3i shape = basis_->grid_shape();
  const int nb = psi.cols();
  assert(static_cast<int>(occ.size()) == nb);
  assert(rho.shape() == shape);
  rho.fill(0.0);
  FieldC& work = work_;
  const double inv_vol = 1.0 / basis_->lattice().volume();
  for (int j = 0; j < nb; ++j) {
    if (occ[j] == 0.0) continue;
    basis_->scatter(psi.col(j), work);
    fft_.inverse(work.raw());
    // inverse FFT includes 1/N: work(r) = (1/N) sum_G c_G e^{iGr}. A
    // normalized band (sum |c|^2 = 1) has  int |psi|^2 = 1 with
    // psi(r) = sum_G c_G e^{iGr} / sqrt(V), so |psi(r)|^2 =
    // N^2 |work(r)|^2 / V.
    const double scale = occ[j] * inv_vol * static_cast<double>(work.size()) *
                         static_cast<double>(work.size());
    for (std::size_t i = 0; i < rho.size(); ++i)
      rho[i] += scale * std::norm(work[i]);
    if (flops_) {
      const Vec3i g = shape;
      flops_->add(FlopCounter::fft3d(g.x, g.y, g.z) + 3 * rho.size());
    }
  }
}

}  // namespace ls3df
