#include "dft/scf.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "poisson/poisson.h"
#include "poisson/sharded_poisson.h"
#include "pseudo/pseudopotential.h"
#include "xc/lda.h"

namespace ls3df {

std::vector<double> fill_occupations(double electrons, int n_bands) {
  std::vector<double> occ(n_bands, 0.0);
  double remaining = electrons;
  for (int j = 0; j < n_bands && remaining > 0; ++j) {
    occ[j] = std::min(2.0, remaining);
    remaining -= occ[j];
  }
  return occ;
}

std::vector<double> smeared_occupations(const std::vector<double>& eigenvalues,
                                        double electrons, double sigma) {
  const int nb = static_cast<int>(eigenvalues.size());
  assert(sigma > 0 && nb > 0);
  auto count = [&](double mu) {
    double n = 0;
    for (double e : eigenvalues) n += std::erfc((e - mu) / sigma);
    return n;  // erfc in [0,2]: spin degeneracy included
  };
  double lo = eigenvalues.front() - 20 * sigma;
  double hi = eigenvalues.back() + 20 * sigma;
  for (int it = 0; it < 200 && hi - lo > 1e-14 * (1 + std::abs(hi)); ++it) {
    const double mid = 0.5 * (lo + hi);
    (count(mid) < electrons ? lo : hi) = mid;
  }
  const double mu = 0.5 * (lo + hi);
  std::vector<double> occ(nb);
  for (int j = 0; j < nb; ++j) occ[j] = std::erfc((eigenvalues[j] - mu) / sigma);
  // Exact normalization (bisection leaves a tiny mismatch).
  double total = 0;
  for (double f : occ) total += f;
  if (total > 0)
    for (double& f : occ) f *= electrons / total;
  return occ;
}

FieldR effective_potential(const FieldR& vion, const FieldR& rho,
                           const Lattice& lat) {
  const double point_vol = lat.volume() / static_cast<double>(rho.size());
  FieldR v = vion;
  HartreeResult hart = solve_poisson(rho, lat);
  v += hart.potential;
  XcResult xc = lda_xc_field(rho, point_vol);
  v += xc.vxc;
  return v;
}

void sharded_assemble_potential(const ShardedFieldR& vion,
                                const ShardedFieldR& rho,
                                const ShardedFieldR& vh, ShardedFieldR& vxc,
                                ShardedFieldR& v_out, ShardComm& comm) {
  // Slab-local assembly in the dense accumulation order:
  // (vion + vh) + vxc per point.
  comm.each_rank([&](int r) {
    lda_vxc_into(rho.slab(r), vxc.slab(r));
    FieldR& v = v_out.slab(r);
    v = vion.slab(r);
    v += vh.slab(r);
    v += vxc.slab(r);
  });
}

void sharded_effective_potential(const ShardedFieldR& vion,
                                 const ShardedFieldR& rho, const Lattice& lat,
                                 DistFft3D& fft, ShardedFieldR& vh,
                                 ShardedFieldR& vxc, ShardedFieldR& v_out) {
  sharded_hartree(fft, rho, lat, vh);
  sharded_assemble_potential(vion, rho, vh, vxc, v_out, fft.comm());
}

ScfResult run_scf(const Structure& s, const ScfOptions& opt) {
  const Vec3i grid = default_fft_grid(s.lattice(), opt.ecut);
  GVectors basis(s.lattice(), grid, opt.ecut);
  Hamiltonian h(s, basis);

  const FieldR vion = h.local_potential();  // bare ionic at construction
  FieldR rho0 = build_initial_density(s, grid);
  FieldR v0 = effective_potential(vion, rho0, s.lattice());
  return run_scf(h, vion, v0, opt);
}

ScfResult run_scf(Hamiltonian& h, const FieldR& vion, const FieldR& v_start,
                  const ScfOptions& opt) {
  const Structure& s = h.structure();
  const Lattice& lat = h.basis().lattice();
  const Vec3i grid = h.basis().grid_shape();
  const double point_vol = lat.volume() / static_cast<double>(vion.size());

  const double electrons = s.num_electrons();
  int n_occ = static_cast<int>(std::ceil(electrons / 2.0));
  int n_bands = opt.n_bands;
  if (n_bands <= 0) n_bands = n_occ + std::max(4, n_occ / 4);
  n_bands = std::min(n_bands, h.basis().count());

  ScfResult result;
  result.occupations = fill_occupations(electrons, n_bands);

  MatC psi = random_wavefunctions(h.basis(), n_bands, opt.seed);
  PotentialMixer mixer(opt.mixer, opt.mix_alpha, lat, grid);

  FieldR v_in = v_start;
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    result.iterations = iter + 1;
    h.set_local_potential(v_in);

    EigensolverResult eig = opt.all_band
                                ? solve_all_band(h, psi, opt.eig)
                                : solve_band_by_band(h, psi, opt.eig);
    result.eigenvalues = eig.eigenvalues;
    if (opt.smearing > 0.0)
      result.occupations =
          smeared_occupations(eig.eigenvalues, electrons, opt.smearing);

    FieldR rho = h.density(psi, result.occupations);
    FieldR v_out = effective_potential(vion, rho, lat);

    const double l1 = l1_distance(v_out, v_in, point_vol);
    result.conv_history.push_back(l1);
    result.rho = std::move(rho);

    if (l1 < opt.l1_tol) {
      result.converged = true;
      result.v_eff = v_in;
      break;
    }
    v_in = mixer.mix(v_in, v_out);
  }
  if (!result.converged) result.v_eff = v_in;

  result.psi = std::move(psi);
  if (opt.compute_energy)
    result.energy =
        total_energy(h, result.psi, result.occupations, result.rho, vion);
  return result;
}

}  // namespace ls3df
