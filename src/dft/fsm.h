// Folded spectrum method (FSM) [Wang & Zunger, J. Chem. Phys. 100, 2394
// (1994)]: solve for eigenstates nearest a reference energy eps_ref by
// minimizing <psi|(H - eps_ref)^2|psi>. The paper uses FSM as the linear-
// scaling post-processing step that extracts only the band-edge states
// (CBM and the oxygen-induced band) from the converged LS3DF potential
// (Sec. VII, Fig. 7).
#pragma once

#include <cstdint>
#include <vector>

#include "dft/hamiltonian.h"
#include "linalg/matrix.h"

namespace ls3df {

struct FsmOptions {
  double eps_ref = 0.0;   // fold point (Ha); states nearest it are found
  int n_states = 4;
  int max_iterations = 60;
  double residual_tol = 1e-6;  // on the folded operator
  std::uint64_t seed = 777;
};

struct FsmResult {
  MatC psi;                          // states spanning the window
  std::vector<double> eigenvalues;   // <psi|H|psi>, ascending
  std::vector<double> folded_values; // <psi|(H-eref)^2|psi>, ascending
  int iterations = 0;
  bool converged = false;
};

// The Hamiltonian's local potential must already be the converged
// effective potential.
FsmResult folded_spectrum(const Hamiltonian& h, const FsmOptions& opt);

// Inverse participation ratio of a band: V * int |psi|^4 / (int |psi|^2)^2.
// Large IPR = spatially localized state (the paper's Fig. 7 clustering
// discussion); IPR = 1 for a fully extended state.
double inverse_participation_ratio(const Hamiltonian& h,
                                   const std::complex<double>* band);

// |psi(r)|^2 of one band on the Hamiltonian's grid, normalized to
// integrate to 1. Used to analyze state character (e.g. the weight near
// oxygen sites in the paper's Fig. 7 discussion).
FieldR band_density(const Hamiltonian& h, const std::complex<double>* band);

// Fraction of a band's density within `radius` of any atom of species
// `sp`, divided by the corresponding volume fraction: 1 = uniform,
// >> 1 = concentrated at those atoms.
double species_weight_enrichment(const Hamiltonian& h,
                                 const std::complex<double>* band,
                                 Species sp, double radius);

}  // namespace ls3df
