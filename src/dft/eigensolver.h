// Iterative eigensolvers for the fragment Schroedinger equation.
//
// Two solver families mirror the paper's Sec. IV optimization study:
//  - solve_all_band: blocked solver working on all wavefunctions
//    simultaneously; orthogonalization via overlap matrix + Cholesky and
//    nonlocal projection via BLAS-3 (the optimized PEtot_F).
//  - solve_band_by_band: conjugate gradient one band at a time with
//    Gram-Schmidt orthogonalization against lower bands (the original
//    PEtot scheme; BLAS-2 dominated).
// Both use the Teter-Payne-Allan kinetic preconditioner standard in
// planewave codes [Payne et al., Rev. Mod. Phys. 64, 1045 (1992)].
//
// == Batched fragment eigensolves (architecture) ==
//
// LS3DF's runtime is dominated by thousands of *small* fragment solves
// whose BLAS-3 calls and FFTs are individually too skinny to saturate the
// kernels. Fragments in the same size class share identical (ng, nb)
// shapes, so solve_all_band_batched() runs K of them in lockstep:
//
//   one batched H application      Hamiltonian::apply_batched — every
//                                  band of every member scattered into a
//                                  contiguous grid stack, one
//                                  inverse/forward many-transform sweep
//                                  (Fft3D::forward_many), one fused
//                                  nonlocal GEMM grid (gemm_batched);
//   K small Rayleigh-Ritz solves   subspace G = V^H HV and the Ritz
//                                  rotations run as batched GEMMs; the
//                                  dense eigh of each (<= 2nb)^2 subspace
//                                  matrix stays per member, arena-backed;
//   per-member scalar steps        residuals, TPA preconditioning and
//                                  search-space expansion fan out over
//                                  members.
//
// Members converge independently: a converged member drops out of the
// lockstep batch and the remaining members keep iterating, so every
// member executes exactly the arithmetic the per-fragment solver would —
// results are bit-identical to solve_all_band for any batch width and
// worker count; batching only changes scheduling and cache behaviour.
//
// This driver is also the seam a GPU backend slots into: the contiguous
// grid stack, the fused GEMM work grid, and the per-batch workspace
// arenas are exactly the units a device stream wants, while the
// per-member scalar steps stay on the host. Porting apply_batched and
// gemm_batched moves the dominant cost to the device without touching
// the LPT scheduler or the SCF loop.
#pragma once

#include <deque>
#include <vector>

#include "dft/hamiltonian.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace ls3df {

struct EigensolverOptions {
  int max_iterations = 25;     // outer iterations (all-band) or CG steps/band
  double residual_tol = 1e-7;  // max |H psi - eps psi| to declare converged
  bool precondition = true;
};

struct EigensolverResult {
  std::vector<double> eigenvalues;  // ascending, one per band
  int iterations = 0;
  double max_residual = 0.0;
  bool converged = false;
};

// Reusable scratch arena for the block temporaries of the iterative
// solvers. One arena per persistent worker lane: buffers grow to the
// largest fragment the lane ever solves and are then reused across
// fragments and outer SCF iterations with zero further heap traffic.
// allocations() counts capacity-growth events, which is the probe the
// LS3DF determinism test uses to verify the steady state allocates
// nothing.
//
// An arena carries no state between solves — every slot is fully
// overwritten before it is read — so results are independent of which
// lane (and therefore which arena) a fragment lands on.
class EigenWorkspace {
 public:
  static constexpr int kMatSlots = 9;  // kV..kY in eigensolver.cpp
  static constexpr int kVecSlots = 5;  // kHpsi..kPrevDir

  // Slot `slot` resized to rows x cols (values unspecified). Storage is
  // reused; an allocation is counted only when the element count exceeds
  // the slot's previous peak (when the underlying vector really grows).
  MatC& mat(int slot, int rows, int cols);
  // Same for contiguous complex vectors.
  std::vector<std::complex<double>>& vec(int slot, int n);

  // Scratch arena for the dense eigh/cholesky calls of the Rayleigh-Ritz
  // loop (linalg/eigen.h), owned by the same lane as the block slots so
  // the whole solve allocates nothing in the steady state.
  EigenScratch& scratch() { return scratch_; }

  // Grow every slot to the extents a fragment of (ng, nb) can ever need,
  // so solves of any fragment at or below those extents never allocate.
  // all_band additionally reserves the block-solver matrix slots (the
  // band-by-band solver only uses the vector slots).
  void reserve(int ng, int nb, bool all_band = true);

  long allocations() const { return allocs_ + scratch_.allocations(); }

 private:
  MatC mats_[kMatSlots];
  std::vector<std::complex<double>> vecs_[kVecSlots];
  std::size_t mat_peak_[kMatSlots] = {};
  std::size_t vec_peak_[kVecSlots] = {};
  EigenScratch scratch_;
  long allocs_ = 0;
};

// Workspace set of a fragment batch: one EigenWorkspace per member plus
// the apply-stack arena. One BatchWorkspace per scheduled batch,
// persistent across outer SCF iterations (batch composition is fixed by
// the size-class grouping, so slots reach their peak in the first
// iteration and are reused ever after).
class BatchWorkspace {
 public:
  EigenWorkspace& member(int i);
  ApplyBatchWorkspace& apply() { return apply_; }

  // Capacity-growth events across every member arena and the apply stack.
  long allocations() const;

 private:
  std::deque<EigenWorkspace> members_;  // deque: stable member addresses
  ApplyBatchWorkspace apply_;
};

// Orthonormalize the columns of X in place via S = X^H X, X <- X L^{-H}
// (BLAS-3; the paper's overlap-matrix scheme). Falls back to Gram-Schmidt
// if S is numerically singular.
void orthonormalize_cholesky(MatC& X);
// Arena-backed variant (identical arithmetic; S and L live in the
// scratch, so steady-state calls allocate nothing).
void orthonormalize_cholesky(MatC& X, EigenScratch& ws);

// Classic modified Gram-Schmidt, one column at a time (BLAS-1/2; the
// original band-by-band scheme).
void orthonormalize_gram_schmidt(MatC& X);

// Rayleigh-Ritz within span(X): rotates X (and optionally HX) to
// approximate eigenvectors, returns subspace eigenvalues ascending.
std::vector<double> subspace_rotate(const Hamiltonian& h, MatC& X);

// Blocked Davidson with TPA preconditioning. psi holds the initial guess
// (columns need not be orthonormal) and is replaced by the lowest
// psi.cols() eigenvector approximations. With a workspace, all block
// temporaries live in (and persist through) the caller's arena.
EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt,
                                 EigenWorkspace& ws);
EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt = {});

// One member of a batched fragment solve.
struct FragmentSolve {
  const Hamiltonian* h = nullptr;
  MatC* psi = nullptr;  // initial guess in, eigenvector approximations out
};

// Batched all-band solver: runs every member's Davidson iteration in
// lockstep (see the architecture block above). All members must share the
// FFT grid shape (same size class); results[i] is bit-identical to
// solve_all_band(*frags[i].h, *frags[i].psi, opt) for any batch width and
// n_workers.
std::vector<EigensolverResult> solve_all_band_batched(
    const std::vector<FragmentSolve>& frags, const EigensolverOptions& opt,
    BatchWorkspace& ws, int n_workers = 1);

// Band-by-band preconditioned CG.
EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt,
                                     EigenWorkspace& ws);
EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt = {});

// Random (reproducible) plane-wave coefficients damped at high kinetic
// energy: the standard starting guess.
MatC random_wavefunctions(const GVectors& basis, int n_bands,
                          std::uint64_t seed);

}  // namespace ls3df
