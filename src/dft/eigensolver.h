// Iterative eigensolvers for the fragment Schroedinger equation.
//
// Two solver families mirror the paper's Sec. IV optimization study:
//  - solve_all_band: blocked solver working on all wavefunctions
//    simultaneously; orthogonalization via overlap matrix + Cholesky and
//    nonlocal projection via BLAS-3 (the optimized PEtot_F).
//  - solve_band_by_band: conjugate gradient one band at a time with
//    Gram-Schmidt orthogonalization against lower bands (the original
//    PEtot scheme; BLAS-2 dominated).
// Both use the Teter-Payne-Allan kinetic preconditioner standard in
// planewave codes [Payne et al., Rev. Mod. Phys. 64, 1045 (1992)].
#pragma once

#include <vector>

#include "dft/hamiltonian.h"
#include "linalg/matrix.h"

namespace ls3df {

struct EigensolverOptions {
  int max_iterations = 25;     // outer iterations (all-band) or CG steps/band
  double residual_tol = 1e-7;  // max |H psi - eps psi| to declare converged
  bool precondition = true;
};

struct EigensolverResult {
  std::vector<double> eigenvalues;  // ascending, one per band
  int iterations = 0;
  double max_residual = 0.0;
  bool converged = false;
};

// Reusable scratch arena for the block temporaries of the iterative
// solvers. One arena per persistent worker lane: buffers grow to the
// largest fragment the lane ever solves and are then reused across
// fragments and outer SCF iterations with zero further heap traffic.
// allocations() counts capacity-growth events, which is the probe the
// LS3DF determinism test uses to verify the steady state allocates
// nothing.
//
// An arena carries no state between solves — every slot is fully
// overwritten before it is read — so results are independent of which
// lane (and therefore which arena) a fragment lands on.
class EigenWorkspace {
 public:
  static constexpr int kMatSlots = 9;  // kV..kY in eigensolver.cpp
  static constexpr int kVecSlots = 5;  // kHpsi..kPrevDir

  // Slot `slot` resized to rows x cols (values unspecified). Storage is
  // reused; an allocation is counted only when the element count exceeds
  // the slot's previous peak (when the underlying vector really grows).
  MatC& mat(int slot, int rows, int cols);
  // Same for contiguous complex vectors.
  std::vector<std::complex<double>>& vec(int slot, int n);

  long allocations() const { return allocs_; }

 private:
  MatC mats_[kMatSlots];
  std::vector<std::complex<double>> vecs_[kVecSlots];
  std::size_t mat_peak_[kMatSlots] = {};
  std::size_t vec_peak_[kVecSlots] = {};
  long allocs_ = 0;
};

// Orthonormalize the columns of X in place via S = X^H X, X <- X L^{-H}
// (BLAS-3; the paper's overlap-matrix scheme). Falls back to Gram-Schmidt
// if S is numerically singular.
void orthonormalize_cholesky(MatC& X);

// Classic modified Gram-Schmidt, one column at a time (BLAS-1/2; the
// original band-by-band scheme).
void orthonormalize_gram_schmidt(MatC& X);

// Rayleigh-Ritz within span(X): rotates X (and optionally HX) to
// approximate eigenvectors, returns subspace eigenvalues ascending.
std::vector<double> subspace_rotate(const Hamiltonian& h, MatC& X);

// Blocked Davidson with TPA preconditioning. psi holds the initial guess
// (columns need not be orthonormal) and is replaced by the lowest
// psi.cols() eigenvector approximations. With a workspace, all block
// temporaries live in (and persist through) the caller's arena.
EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt,
                                 EigenWorkspace& ws);
EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt = {});

// Band-by-band preconditioned CG.
EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt,
                                     EigenWorkspace& ws);
EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt = {});

// Random (reproducible) plane-wave coefficients damped at high kinetic
// energy: the standard starting guess.
MatC random_wavefunctions(const GVectors& basis, int n_bands,
                          std::uint64_t seed);

}  // namespace ls3df
