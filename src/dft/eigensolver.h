// Iterative eigensolvers for the fragment Schroedinger equation.
//
// Two solver families mirror the paper's Sec. IV optimization study:
//  - solve_all_band: blocked solver working on all wavefunctions
//    simultaneously; orthogonalization via overlap matrix + Cholesky and
//    nonlocal projection via BLAS-3 (the optimized PEtot_F).
//  - solve_band_by_band: conjugate gradient one band at a time with
//    Gram-Schmidt orthogonalization against lower bands (the original
//    PEtot scheme; BLAS-2 dominated).
// Both use the Teter-Payne-Allan kinetic preconditioner standard in
// planewave codes [Payne et al., Rev. Mod. Phys. 64, 1045 (1992)].
#pragma once

#include <vector>

#include "dft/hamiltonian.h"
#include "linalg/matrix.h"

namespace ls3df {

struct EigensolverOptions {
  int max_iterations = 25;     // outer iterations (all-band) or CG steps/band
  double residual_tol = 1e-7;  // max |H psi - eps psi| to declare converged
  bool precondition = true;
};

struct EigensolverResult {
  std::vector<double> eigenvalues;  // ascending, one per band
  int iterations = 0;
  double max_residual = 0.0;
  bool converged = false;
};

// Orthonormalize the columns of X in place via S = X^H X, X <- X L^{-H}
// (BLAS-3; the paper's overlap-matrix scheme). Falls back to Gram-Schmidt
// if S is numerically singular.
void orthonormalize_cholesky(MatC& X);

// Classic modified Gram-Schmidt, one column at a time (BLAS-1/2; the
// original band-by-band scheme).
void orthonormalize_gram_schmidt(MatC& X);

// Rayleigh-Ritz within span(X): rotates X (and optionally HX) to
// approximate eigenvectors, returns subspace eigenvalues ascending.
std::vector<double> subspace_rotate(const Hamiltonian& h, MatC& X);

// Blocked Davidson with TPA preconditioning. psi holds the initial guess
// (columns need not be orthonormal) and is replaced by the lowest
// psi.cols() eigenvector approximations.
EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt = {});

// Band-by-band preconditioned CG.
EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt = {});

// Random (reproducible) plane-wave coefficients damped at high kinetic
// energy: the standard starting guess.
MatC random_wavefunctions(const GVectors& basis, int n_bands,
                          std::uint64_t seed);

}  // namespace ls3df
