// Iterative eigensolvers for the fragment Schroedinger equation.
//
// Two solver families mirror the paper's Sec. IV optimization study:
//  - solve_all_band: blocked solver working on all wavefunctions
//    simultaneously; orthogonalization via overlap matrix + Cholesky and
//    nonlocal projection via BLAS-3 (the optimized PEtot_F).
//  - solve_band_by_band: conjugate gradient one band at a time with
//    Gram-Schmidt orthogonalization against lower bands (the original
//    PEtot scheme; BLAS-2 dominated).
// Both use the Teter-Payne-Allan kinetic preconditioner standard in
// planewave codes [Payne et al., Rev. Mod. Phys. 64, 1045 (1992)].
//
// == Batched fragment eigensolves (architecture) ==
//
// LS3DF's runtime is dominated by thousands of *small* fragment solves
// whose BLAS-3 calls and FFTs are individually too skinny to saturate the
// kernels. Fragments in the same size class share identical (ng, nb)
// shapes, so solve_all_band_batched() runs K of them in lockstep:
//
//   one batched H application      Hamiltonian::apply_batched — every
//                                  band of every member scattered into a
//                                  contiguous grid stack, one
//                                  inverse/forward many-transform sweep
//                                  (Fft3D::forward_many), one fused
//                                  nonlocal GEMM grid (gemm_batched);
//   K small Rayleigh-Ritz solves   subspace G = V^H HV and the Ritz
//                                  rotations run as batched GEMMs; the
//                                  dense eigh of each (<= 2nb)^2 subspace
//                                  matrix stays per member, arena-backed;
//   per-member scalar steps        residuals, TPA preconditioning and
//                                  search-space expansion fan out over
//                                  members.
//
// Members converge independently: a converged member drops out of the
// lockstep batch and the remaining members keep iterating, so every
// member executes exactly the arithmetic the per-fragment solver would —
// results are bit-identical to solve_all_band for any batch width and
// worker count; batching only changes scheduling and cache behaviour.
//
// This driver is also the seam a GPU backend slots into: the contiguous
// grid stack, the fused GEMM work grid, and the per-batch workspace
// arenas are exactly the units a device stream wants, while the
// per-member scalar steps stay on the host. Porting apply_batched and
// gemm_batched moves the dominant cost to the device without touching
// the LPT scheduler or the SCF loop.
//
// == Live lane width (donation) ==
//
// The batched drivers take an optional live_lanes callback. When set, the
// driver re-reads it at every sweep boundary (each batched apply, each
// batched GEMM, each per-member fan-out) and uses the returned width for
// that sweep instead of the fixed n_workers it was launched with. The
// LS3DF engine points this at LaneBudget::allowance(): as sibling chains
// of the same dispatch round retire, their worker lanes are donated and
// the still-running solves widen mid-flight. Every batched kernel is
// worker-count-invariant by construction, so a donated width change can
// never alter results — the bit-identity contract holds with donation on
// or off (tests/test_equivalence.cpp draws both).
//
// == Mixed precision (fp32 fast path) ==
//
// solve_all_band_batched_f32 is a single-precision instantiation of the
// same lockstep Davidson: fp32 Ritz blocks in the EigenWorkspace fp32
// arenas, Hamiltonian::apply_batched_f32 (single-precision FFT plans and
// GEMM cores) for the applications, and float batched GEMMs for the
// Rayleigh-Ritz projections. Three deliberate deviations keep it stable:
//   - the starting orthonormalization runs in double, then rounds once
//     into the fp32 block (no float Cholesky needed);
//   - the tiny subspace matrix G is promoted to double for the dense
//     eigh (free next to the fp32 GEMMs, keeps the rotation
//     well-conditioned);
//   - the residual tolerance is floored at 2e-5 — fp32 cannot resolve
//     tighter residuals, so the solver must not chase them.
// The promotion policy lives in the LS3DF engine (fragment/ls3df.h,
// Ls3dfOptions::precision): early outer SCF iterations run this fast
// path while the mixer's L1 residual is above promote_factor * l1_tol, then every
// later iteration runs the fp64 driver, which erases the fp32 rounding
// history (the converged fixed point is the fp64 one). This path is NOT
// bit-identical to the reference; it is guarded by trajectory checks
// (tests/test_mixed_precision.cpp) instead, and is off by default.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "dft/hamiltonian.h"
#include "linalg/eigen.h"
#include "linalg/matrix.h"

namespace ls3df {

struct EigensolverOptions {
  int max_iterations = 25;     // outer iterations (all-band) or CG steps/band
  double residual_tol = 1e-7;  // max |H psi - eps psi| to declare converged
  bool precondition = true;
};

struct EigensolverResult {
  std::vector<double> eigenvalues;  // ascending, one per band
  int iterations = 0;
  double max_residual = 0.0;
  bool converged = false;
};

// Reusable scratch arena for the block temporaries of the iterative
// solvers. One arena per persistent worker lane: buffers grow to the
// largest fragment the lane ever solves and are then reused across
// fragments and outer SCF iterations with zero further heap traffic.
// allocations() counts capacity-growth events, which is the probe the
// LS3DF determinism test uses to verify the steady state allocates
// nothing.
//
// An arena carries no state between solves — every slot is fully
// overwritten before it is read — so results are independent of which
// lane (and therefore which arena) a fragment lands on.
class EigenWorkspace {
 public:
  static constexpr int kMatSlots = 9;  // kV..kY in eigensolver.cpp
  static constexpr int kVecSlots = 5;  // kHpsi..kPrevDir

  // Slot `slot` resized to rows x cols (values unspecified). Storage is
  // reused; an allocation is counted only when the element count exceeds
  // the slot's previous peak (when the underlying vector really grows).
  MatC& mat(int slot, int rows, int cols);
  // Same for contiguous complex vectors.
  std::vector<std::complex<double>>& vec(int slot, int n);
  // Single-precision twins of the matrix slots: the fp32 arenas behind
  // solve_all_band_batched_f32. Same grow-only discipline and allocation
  // accounting as mat(); they stay empty until the mixed-precision fast
  // path first touches the lane, so fp64-only runs pay nothing.
  MatCF& mat_f32(int slot, int rows, int cols);

  // Scratch arena for the dense eigh/cholesky calls of the Rayleigh-Ritz
  // loop (linalg/eigen.h), owned by the same lane as the block slots so
  // the whole solve allocates nothing in the steady state.
  EigenScratch& scratch() { return scratch_; }

  // Grow every slot to the extents a fragment of (ng, nb) can ever need,
  // so solves of any fragment at or below those extents never allocate.
  // all_band additionally reserves the block-solver matrix slots (the
  // band-by-band solver only uses the vector slots).
  void reserve(int ng, int nb, bool all_band = true);

  long allocations() const { return allocs_ + scratch_.allocations(); }

 private:
  MatC mats_[kMatSlots];
  std::vector<std::complex<double>> vecs_[kVecSlots];
  std::size_t mat_peak_[kMatSlots] = {};
  std::size_t vec_peak_[kVecSlots] = {};
  MatCF mats_f32_[kMatSlots];
  std::size_t mat_f32_peak_[kMatSlots] = {};
  EigenScratch scratch_;
  long allocs_ = 0;
};

// Workspace set of a fragment batch: one EigenWorkspace per member plus
// the apply-stack arena. One BatchWorkspace per scheduled batch,
// persistent across outer SCF iterations (batch composition is fixed by
// the size-class grouping, so slots reach their peak in the first
// iteration and are reused ever after).
class BatchWorkspace {
 public:
  EigenWorkspace& member(int i);
  ApplyBatchWorkspace& apply() { return apply_; }

  // Capacity-growth events across every member arena and the apply stack.
  long allocations() const;

  // Dispatch-control scratch hoisted out of the lockstep drivers: the
  // batched-apply item list, the three Rayleigh-Ritz GEMM item lists
  // (and their fp32 twins), and the active/still member index sets. A
  // fresh heap allocation per sweep would keep the steady-state
  // allocation probes from going flat; these are grow-only instead, and
  // capacity growth folds into allocations() once per solve via
  // note_dispatch_capacity().
  std::vector<Hamiltonian::ApplyItem> apply_items;
  std::vector<Hamiltonian::ApplyItemF32> apply_items_f32;
  std::vector<GemmBatchItem> g_items, x_items, hx_items;
  std::vector<GemmBatchItemF> g_items_f32, x_items_f32, hx_items_f32;
  std::vector<int> active, still;

  // Grow-only byte arena for the drivers' per-member bookkeeping table
  // (a trivially-destructible internal struct; sized bytes, aligned for
  // any object type by the underlying allocator).
  void* member_table(std::size_t bytes);
  void note_dispatch_capacity();

 private:
  std::deque<EigenWorkspace> members_;  // deque: stable member addresses
  ApplyBatchWorkspace apply_;
  std::vector<unsigned char> member_table_;
  std::size_t member_table_peak_ = 0;
  std::size_t dispatch_peak_ = 0;
  long allocs_ = 0;
};

// Orthonormalize the columns of X in place via S = X^H X, X <- X L^{-H}
// (BLAS-3; the paper's overlap-matrix scheme). Falls back to Gram-Schmidt
// if S is numerically singular.
void orthonormalize_cholesky(MatC& X);
// Arena-backed variant (identical arithmetic; S and L live in the
// scratch, so steady-state calls allocate nothing).
void orthonormalize_cholesky(MatC& X, EigenScratch& ws);

// Classic modified Gram-Schmidt, one column at a time (BLAS-1/2; the
// original band-by-band scheme).
void orthonormalize_gram_schmidt(MatC& X);

// Rayleigh-Ritz within span(X): rotates X (and optionally HX) to
// approximate eigenvectors, returns subspace eigenvalues ascending.
std::vector<double> subspace_rotate(const Hamiltonian& h, MatC& X);

// Blocked Davidson with TPA preconditioning. psi holds the initial guess
// (columns need not be orthonormal) and is replaced by the lowest
// psi.cols() eigenvector approximations. With a workspace, all block
// temporaries live in (and persist through) the caller's arena.
EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt,
                                 EigenWorkspace& ws);
EigensolverResult solve_all_band(const Hamiltonian& h, MatC& psi,
                                 const EigensolverOptions& opt = {});

// One member of a batched fragment solve.
struct FragmentSolve {
  const Hamiltonian* h = nullptr;
  MatC* psi = nullptr;  // initial guess in, eigenvector approximations out
};

// Batched all-band solver: runs every member's Davidson iteration in
// lockstep (see the architecture block above). All members must share the
// FFT grid shape (same size class); results[i] is bit-identical to
// solve_all_band(*frags[i].h, *frags[i].psi, opt) for any batch width,
// n_workers, and live_lanes schedule. live_lanes, when set, is re-read at
// every sweep boundary and overrides n_workers for that sweep (the lane-
// donation hook; see the architecture block).
std::vector<EigensolverResult> solve_all_band_batched(
    const std::vector<FragmentSolve>& frags, const EigensolverOptions& opt,
    BatchWorkspace& ws, int n_workers = 1,
    const std::function<int()>& live_lanes = {});

// Single-precision lockstep driver (the mixed-precision fast path; see
// the architecture block). Takes the same double-precision psi blocks:
// the guess is orthonormalized in double, rounded once into the fp32
// arenas, iterated in fp32, and the result rounded back into psi. NOT
// bit-identical to solve_all_band — the effective residual tolerance is
// floored at 2e-5 and eigenvalues carry fp32 subspace accuracy.
std::vector<EigensolverResult> solve_all_band_batched_f32(
    const std::vector<FragmentSolve>& frags, const EigensolverOptions& opt,
    BatchWorkspace& ws, int n_workers = 1,
    const std::function<int()>& live_lanes = {});

// Band-by-band preconditioned CG.
EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt,
                                     EigenWorkspace& ws);
EigensolverResult solve_band_by_band(const Hamiltonian& h, MatC& psi,
                                     const EigensolverOptions& opt = {});

// Random (reproducible) plane-wave coefficients damped at high kinetic
// energy: the standard starting guess.
MatC random_wavefunctions(const GVectors& basis, int n_bands,
                          std::uint64_t seed);

}  // namespace ls3df
