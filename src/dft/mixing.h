// Potential mixing for the self-consistency loop (the "Potential mixing"
// box in the paper's Fig. 2 flow chart). Three schemes:
//   kLinear - V_next = V_in + alpha (V_out - V_in)
//   kKerker - linear with the q-dependent factor alpha q^2/(q^2+q0^2)
//             damping long-wavelength charge sloshing
//   kPulay  - Anderson/Pulay (DIIS) acceleration over a residual history
// The paper notes LS3DF uses "the same charge mixing scheme" as direct
// LDA, so convergence behaviour carries over (Sec. VII).
#pragma once

#include <memory>
#include <vector>

#include "grid/field3d.h"
#include "grid/lattice.h"

namespace ls3df {

enum class MixerType { kLinear, kKerker, kPulay };

class PotentialMixer {
 public:
  PotentialMixer(MixerType type, double alpha, const Lattice& lat,
                 Vec3i shape, int history = 6, double kerker_q0 = 0.8);

  // Produce the next input potential from the current (V_in, V_out) pair.
  FieldR mix(const FieldR& v_in, const FieldR& v_out);

  void reset();
  MixerType type() const { return type_; }

 private:
  FieldR kerker_smooth(const FieldR& residual) const;

  MixerType type_;
  double alpha_;
  Lattice lattice_;
  Vec3i shape_;
  int max_history_;
  double q0_;
  std::vector<FieldR> v_history_;
  std::vector<FieldR> r_history_;
};

}  // namespace ls3df
