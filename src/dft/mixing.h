// Potential mixing for the self-consistency loop (the "Potential mixing"
// box in the paper's Fig. 2 flow chart). Three schemes:
//   kLinear - V_next = V_in + alpha (V_out - V_in)
//   kKerker - linear with the q-dependent factor alpha q^2/(q^2+q0^2)
//             damping long-wavelength charge sloshing
//   kPulay  - Anderson/Pulay (DIIS) acceleration over a residual history
// The paper notes LS3DF uses "the same charge mixing scheme" as direct
// LDA, so convergence behaviour carries over (Sec. VII).
//
// Two drivers share the arithmetic: PotentialMixer on the dense global
// grid, and ShardedPotentialMixer on x-slabs (grid/sharded_field.h) with
// the Kerker smoothing running through the distributed FFT. All DIIS
// inner products use the plane-blocked reduction (plane_dot), so the two
// mixers are bit-identical for any shard count — the Gram matrix, the
// coefficient solve, and every pointwise update see the same bits.
#pragma once

#include <memory>
#include <vector>

#include "fft/dist_fft3d.h"
#include "grid/field3d.h"
#include "grid/lattice.h"
#include "grid/sharded_field.h"

namespace ls3df {

enum class MixerType { kLinear, kKerker, kPulay };

class PotentialMixer {
 public:
  PotentialMixer(MixerType type, double alpha, const Lattice& lat,
                 Vec3i shape, int history = 6, double kerker_q0 = 0.8);

  // Produce the next input potential from the current (V_in, V_out) pair.
  FieldR mix(const FieldR& v_in, const FieldR& v_out);

  void reset();
  MixerType type() const { return type_; }

  // Checkpoint seam: the Pulay DIIS stack, exposed raw so a snapshot
  // (checkpoint/snapshot.h) can serialize it and a resumed solve can
  // restore it bit-exactly — the DIIS Gram matrix sees the same history
  // bits, so the continued mixing trajectory is identical.
  const std::vector<FieldR>& v_history() const { return v_history_; }
  const std::vector<FieldR>& r_history() const { return r_history_; }
  void restore_history(std::vector<FieldR> v, std::vector<FieldR> r);

 private:
  FieldR kerker_smooth(const FieldR& residual) const;

  MixerType type_;
  double alpha_;
  Lattice lattice_;
  Vec3i shape_;
  int max_history_;
  double q0_;
  std::vector<FieldR> v_history_;
  std::vector<FieldR> r_history_;
};

// The sharded twin: identical schemes and identical bits, with every
// field living as x-slabs over `fft`'s ShardComm. History is stored
// per-shard (global/N per rank per slot), DIIS dots are plane-blocked
// all_gather reductions, and Kerker smoothing runs through the
// distributed transform — mixing is applied shard-locally end to end.
// Under an SPMD transport the history slots inherit the inputs'
// rank-local storage (one resident slab per rank), so the DIIS stack
// also costs ~global/N per rank.
class ShardedPotentialMixer {
 public:
  ShardedPotentialMixer(MixerType type, double alpha, const Lattice& lat,
                        DistFft3D& fft, int history = 6,
                        double kerker_q0 = 0.8);

  ShardedFieldR mix(const ShardedFieldR& v_in, const ShardedFieldR& v_out);

  void reset();
  MixerType type() const { return type_; }

  // Checkpoint seam (see PotentialMixer): the sharded DIIS stack, one
  // slab set per history slot.
  const std::vector<ShardedFieldR>& v_history() const { return v_history_; }
  const std::vector<ShardedFieldR>& r_history() const { return r_history_; }
  void restore_history(std::vector<ShardedFieldR> v,
                       std::vector<ShardedFieldR> r);

 private:
  void kerker_smooth(const ShardedFieldR& residual, ShardedFieldR& out);

  MixerType type_;
  double alpha_;
  Lattice lattice_;
  DistFft3D& fft_;
  int max_history_;
  double q0_;
  std::vector<ShardedFieldR> v_history_;
  std::vector<ShardedFieldR> r_history_;
};

}  // namespace ls3df
