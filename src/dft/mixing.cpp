#include "dft/mixing.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "fft/plan_cache.h"
#include "grid/gvectors.h"
#include "linalg/eigen.h"

namespace ls3df {

namespace {

// Solve the (m+1) x (m+1) DIIS system (Lagrange-multiplier form) from
// the residual Gram matrix (row-major, m x m). An empty result means the
// history is degenerate; both mixers then fall back to linear mixing and
// drop their history — identical inputs take the identical branch, which
// keeps the dense and sharded drivers in bit-level lockstep.
std::vector<double> diis_coefficients(const std::vector<double>& gram,
                                      int m) {
  MatR A(m + 1, m + 1);
  std::vector<double> b(m + 1, 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) A(i, j) = gram[static_cast<std::size_t>(i) * m + j];
    A(i, m) = 1.0;
    A(m, i) = 1.0;
  }
  A(m, m) = 0.0;
  b[m] = 1.0;
  try {
    return solve_linear(A, b);
  } catch (const std::runtime_error&) {
    return {};
  }
}

// Kerker damping factor for |G|^2; G = 0 passes through untouched so the
// residual's constant part still mixes.
inline bool kerker_damps(double g2) { return g2 > 1e-12; }
inline double kerker_factor(double g2, double q0) {
  return g2 / (g2 + q0 * q0);
}

}  // namespace

PotentialMixer::PotentialMixer(MixerType type, double alpha,
                               const Lattice& lat, Vec3i shape, int history,
                               double kerker_q0)
    : type_(type),
      alpha_(alpha),
      lattice_(lat),
      shape_(shape),
      max_history_(history),
      q0_(kerker_q0) {}

void PotentialMixer::reset() {
  v_history_.clear();
  r_history_.clear();
}

void PotentialMixer::restore_history(std::vector<FieldR> v,
                                     std::vector<FieldR> r) {
  if (v.size() != r.size() ||
      static_cast<int>(v.size()) > max_history_)
    throw std::invalid_argument(
        "PotentialMixer::restore_history: inconsistent DIIS stack");
  v_history_ = std::move(v);
  r_history_ = std::move(r);
}

FieldR PotentialMixer::kerker_smooth(const FieldR& residual) const {
  FieldC work(shape_);
  for (std::size_t i = 0; i < residual.size(); ++i)
    work[i] = std::complex<double>(residual[i], 0.0);
  const Fft3D& fft = fft_plan(shape_);
  fft.forward(work.raw());
  const Vec3d b = lattice_.reciprocal();
  for (int i1 = 0; i1 < shape_.x; ++i1) {
    const double gx = GVectors::freq(i1, shape_.x) * b.x;
    for (int i2 = 0; i2 < shape_.y; ++i2) {
      const double gy = GVectors::freq(i2, shape_.y) * b.y;
      for (int i3 = 0; i3 < shape_.z; ++i3) {
        const double gz = GVectors::freq(i3, shape_.z) * b.z;
        const double g2 = gx * gx + gy * gy + gz * gz;
        if (kerker_damps(g2)) work(i1, i2, i3) *= kerker_factor(g2, q0_);
      }
    }
  }
  fft.inverse(work.raw());
  FieldR out(shape_);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = work[i].real();
  return out;
}

FieldR PotentialMixer::mix(const FieldR& v_in, const FieldR& v_out) {
  assert(v_in.shape() == shape_ && v_out.shape() == shape_);
  FieldR residual = v_out;
  residual -= v_in;

  // next = v_in + alpha * field (the linear form and every fallback).
  const auto linear_step = [&](const FieldR& field) {
    FieldR next = v_in;
    for (std::size_t i = 0; i < next.size(); ++i)
      next[i] += alpha_ * field[i];
    return next;
  };

  if (type_ == MixerType::kLinear) return linear_step(residual);
  if (type_ == MixerType::kKerker) return linear_step(kerker_smooth(residual));

  // Pulay/Anderson: keep history of (v_in, residual); minimize the norm of
  // the extrapolated residual subject to coefficients summing to one.
  v_history_.push_back(v_in);
  r_history_.push_back(residual);
  if (static_cast<int>(v_history_.size()) > max_history_) {
    v_history_.erase(v_history_.begin());
    r_history_.erase(r_history_.begin());
  }
  const int m = static_cast<int>(v_history_.size());
  if (m == 1) return linear_step(residual);

  // Residual Gram matrix via the plane-blocked reduction — the canonical
  // deterministic dot shared with the sharded mixer.
  std::vector<double> gram(static_cast<std::size_t>(m) * m);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j)
      gram[static_cast<std::size_t>(i) * m + j] =
          plane_dot(r_history_[i], r_history_[j]);

  const std::vector<double> c = diis_coefficients(gram, m);
  if (c.empty()) {
    // Degenerate history: fall back to linear mixing and drop history.
    v_history_.clear();
    r_history_.clear();
    return linear_step(residual);
  }

  FieldR next(shape_);
  for (int i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < next.size(); ++k)
      next[k] += c[i] * (v_history_[i][k] + alpha_ * r_history_[i][k]);
  }
  return next;
}

// ---------------------------------------------------------------------------
// ShardedPotentialMixer: the same arithmetic on x-slabs.

ShardedPotentialMixer::ShardedPotentialMixer(MixerType type, double alpha,
                                             const Lattice& lat,
                                             DistFft3D& fft, int history,
                                             double kerker_q0)
    : type_(type),
      alpha_(alpha),
      lattice_(lat),
      fft_(fft),
      max_history_(history),
      q0_(kerker_q0) {}

void ShardedPotentialMixer::reset() {
  v_history_.clear();
  r_history_.clear();
}

void ShardedPotentialMixer::restore_history(std::vector<ShardedFieldR> v,
                                            std::vector<ShardedFieldR> r) {
  if (v.size() != r.size() ||
      static_cast<int>(v.size()) > max_history_)
    throw std::invalid_argument(
        "ShardedPotentialMixer::restore_history: inconsistent DIIS stack");
  v_history_ = std::move(v);
  r_history_ = std::move(r);
}

void ShardedPotentialMixer::kerker_smooth(const ShardedFieldR& residual,
                                          ShardedFieldR& out) {
  fft_.forward(residual);
  for_each_pencil_g2(fft_, lattice_, [this](cplx& v, double g2) {
    if (kerker_damps(g2)) v *= kerker_factor(g2, q0_);
  });
  fft_.inverse(out);
}

ShardedFieldR ShardedPotentialMixer::mix(const ShardedFieldR& v_in,
                                         const ShardedFieldR& v_out) {
  ShardComm& comm = fft_.comm();
  const int n = comm.n_ranks();
  assert(v_in.global_shape() == fft_.shape() && v_in.n_shards() == n);
  assert(v_out.global_shape() == fft_.shape() && v_out.n_shards() == n);
  ShardedFieldR residual = v_out;
  comm.each_rank([&](int r) { residual.slab(r) -= v_in.slab(r); });

  // next = v_in + alpha * field, slab-local (the linear form and every
  // fallback below).
  const auto linear_step = [&](const ShardedFieldR& field) {
    ShardedFieldR next = v_in;
    comm.each_rank([&](int r) {
      FieldR& nf = next.slab(r);
      const FieldR& ff = field.slab(r);
      for (std::size_t i = 0; i < nf.size(); ++i) nf[i] += alpha_ * ff[i];
    });
    return next;
  };

  if (type_ == MixerType::kLinear) return linear_step(residual);
  if (type_ == MixerType::kKerker) {
    ShardedFieldR smoothed(fft_.shape(), n, comm.local_rank());
    kerker_smooth(residual, smoothed);
    return linear_step(smoothed);
  }

  v_history_.push_back(v_in);
  r_history_.push_back(residual);
  if (static_cast<int>(v_history_.size()) > max_history_) {
    v_history_.erase(v_history_.begin());
    r_history_.erase(r_history_.begin());
  }
  const int m = static_cast<int>(v_history_.size());
  if (m == 1) return linear_step(residual);

  std::vector<double> gram(static_cast<std::size_t>(m) * m);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < m; ++j)
      gram[static_cast<std::size_t>(i) * m + j] =
          plane_dot(r_history_[i], r_history_[j], comm);

  const std::vector<double> c = diis_coefficients(gram, m);
  if (c.empty()) {
    v_history_.clear();
    r_history_.clear();
    return linear_step(residual);
  }

  ShardedFieldR next(fft_.shape(), n, comm.local_rank());
  for (int i = 0; i < m; ++i) {
    const ShardedFieldR& vh = v_history_[i];
    const ShardedFieldR& rh = r_history_[i];
    comm.each_rank([&](int r) {
      FieldR& nf = next.slab(r);
      const FieldR& vf = vh.slab(r);
      const FieldR& rf = rh.slab(r);
      for (std::size_t k = 0; k < nf.size(); ++k)
        nf[k] += c[i] * (vf[k] + alpha_ * rf[k]);
    });
  }
  return next;
}

}  // namespace ls3df
