#include "dft/mixing.h"

#include <cassert>
#include <cmath>

#include "fft/plan_cache.h"
#include "grid/gvectors.h"
#include "linalg/eigen.h"

namespace ls3df {

PotentialMixer::PotentialMixer(MixerType type, double alpha,
                               const Lattice& lat, Vec3i shape, int history,
                               double kerker_q0)
    : type_(type),
      alpha_(alpha),
      lattice_(lat),
      shape_(shape),
      max_history_(history),
      q0_(kerker_q0) {}

void PotentialMixer::reset() {
  v_history_.clear();
  r_history_.clear();
}

FieldR PotentialMixer::kerker_smooth(const FieldR& residual) const {
  FieldC work(shape_);
  for (std::size_t i = 0; i < residual.size(); ++i)
    work[i] = std::complex<double>(residual[i], 0.0);
  const Fft3D& fft = fft_plan(shape_);
  fft.forward(work.raw());
  const Vec3d b = lattice_.reciprocal();
  for (int i1 = 0; i1 < shape_.x; ++i1) {
    const double gx = GVectors::freq(i1, shape_.x) * b.x;
    for (int i2 = 0; i2 < shape_.y; ++i2) {
      const double gy = GVectors::freq(i2, shape_.y) * b.y;
      for (int i3 = 0; i3 < shape_.z; ++i3) {
        const double gz = GVectors::freq(i3, shape_.z) * b.z;
        const double g2 = gx * gx + gy * gy + gz * gz;
        // Damp long wavelengths (charge sloshing), but pass the G = 0
        // component through untouched: the average potential must still
        // be mixed or the residual's constant part never decays.
        if (g2 > 1e-12) work(i1, i2, i3) *= g2 / (g2 + q0_ * q0_);
      }
    }
  }
  fft.inverse(work.raw());
  FieldR out(shape_);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = work[i].real();
  return out;
}

FieldR PotentialMixer::mix(const FieldR& v_in, const FieldR& v_out) {
  assert(v_in.shape() == shape_ && v_out.shape() == shape_);
  FieldR residual = v_out;
  residual -= v_in;

  if (type_ == MixerType::kLinear) {
    FieldR next = v_in;
    for (std::size_t i = 0; i < next.size(); ++i)
      next[i] += alpha_ * residual[i];
    return next;
  }
  if (type_ == MixerType::kKerker) {
    FieldR smoothed = kerker_smooth(residual);
    FieldR next = v_in;
    for (std::size_t i = 0; i < next.size(); ++i)
      next[i] += alpha_ * smoothed[i];
    return next;
  }

  // Pulay/Anderson: keep history of (v_in, residual); minimize the norm of
  // the extrapolated residual subject to coefficients summing to one.
  v_history_.push_back(v_in);
  r_history_.push_back(residual);
  if (static_cast<int>(v_history_.size()) > max_history_) {
    v_history_.erase(v_history_.begin());
    r_history_.erase(r_history_.begin());
  }
  const int m = static_cast<int>(v_history_.size());
  if (m == 1) {
    FieldR next = v_in;
    for (std::size_t i = 0; i < next.size(); ++i)
      next[i] += alpha_ * residual[i];
    return next;
  }

  // Solve the (m+1) x (m+1) DIIS system with a Lagrange multiplier.
  MatR A(m + 1, m + 1);
  std::vector<double> b(m + 1, 0.0);
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      double dot = 0;
      for (std::size_t k = 0; k < residual.size(); ++k)
        dot += r_history_[i][k] * r_history_[j][k];
      A(i, j) = dot;
    }
    A(i, m) = 1.0;
    A(m, i) = 1.0;
  }
  A(m, m) = 0.0;
  b[m] = 1.0;

  std::vector<double> c;
  try {
    c = solve_linear(A, b);
  } catch (const std::runtime_error&) {
    // Degenerate history: fall back to linear mixing and drop history.
    v_history_.clear();
    r_history_.clear();
    FieldR next = v_in;
    for (std::size_t i = 0; i < next.size(); ++i)
      next[i] += alpha_ * residual[i];
    return next;
  }

  FieldR next(shape_);
  for (int i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < next.size(); ++k)
      next[k] += c[i] * (v_history_[i][k] + alpha_ * r_history_[i][k]);
  }
  return next;
}

}  // namespace ls3df
