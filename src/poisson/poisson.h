// GENPOT kernel: the global Poisson equation solved with FFTs (Sec. III,
// step 4). Given the patched total charge density, returns the Hartree
// potential V_H(G) = 4 pi rho(G) / G^2 (G = 0 set to zero; neutral cells).
#pragma once

#include "grid/field3d.h"
#include "grid/lattice.h"

namespace ls3df {

struct HartreeResult {
  FieldR potential;  // V_H(r), Hartree
  double energy;     // E_H = 1/2 int rho V_H d3r
};

// rho is an electron (or total) density on the periodic grid of `lat`.
HartreeResult solve_poisson(const FieldR& rho, const Lattice& lat);

}  // namespace ls3df
