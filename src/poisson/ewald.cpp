#include "poisson/ewald.h"

#include <cassert>
#include <cmath>

#include "common/constants.h"

namespace ls3df {

double ewald_energy(const Structure& s, double eta) {
  std::vector<Vec3d> pos;
  std::vector<double> q;
  pos.reserve(s.size());
  q.reserve(s.size());
  for (const auto& a : s.atoms()) {
    pos.push_back(a.position);
    q.push_back(species_valence(a.species));
  }
  return ewald_energy(s.lattice(), pos, q, eta);
}

double ewald_energy(const Lattice& lat, const std::vector<Vec3d>& positions,
                    const std::vector<double>& charges, double eta) {
  const int n = static_cast<int>(positions.size());
  assert(charges.size() == positions.size());
  const Vec3d L = lat.lengths();
  const double vol = lat.volume();

  if (eta <= 0) {
    // Balance real/reciprocal work: eta ~ (pi / V^{1/3})^2-ish.
    const double l = std::cbrt(vol);
    eta = units::kPi / (l * l) * 3.0;
  }
  const double sqrt_eta = std::sqrt(eta);

  // Accuracy targets: erfc(x) < 1e-12 at x ~ 5.2; exp(-x) < 1e-12 at ~27.6.
  const double rcut = 5.2 / sqrt_eta;
  const double gcut2 = 4.0 * eta * 27.6;

  double total_q = 0, total_q2 = 0;
  for (double q : charges) {
    total_q += q;
    total_q2 += q * q;
  }

  // Real-space sum over image shells.
  const Vec3i shells{static_cast<int>(std::ceil(rcut / L.x)),
                     static_cast<int>(std::ceil(rcut / L.y)),
                     static_cast<int>(std::ceil(rcut / L.z))};
  double e_real = 0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const Vec3d d0 = positions[j] - positions[i];
      for (int sx = -shells.x; sx <= shells.x; ++sx)
        for (int sy = -shells.y; sy <= shells.y; ++sy)
          for (int sz = -shells.z; sz <= shells.z; ++sz) {
            if (i == j && sx == 0 && sy == 0 && sz == 0) continue;
            const Vec3d d{d0.x + sx * L.x, d0.y + sy * L.y, d0.z + sz * L.z};
            const double r = d.norm();
            if (r < rcut)
              e_real += 0.5 * charges[i] * charges[j] *
                        std::erfc(sqrt_eta * r) / r;
          }
    }

  // Reciprocal-space sum.
  const Vec3d b = lat.reciprocal();
  const Vec3i gmax{static_cast<int>(std::ceil(std::sqrt(gcut2) / b.x)),
                   static_cast<int>(std::ceil(std::sqrt(gcut2) / b.y)),
                   static_cast<int>(std::ceil(std::sqrt(gcut2) / b.z))};
  double e_recip = 0;
  for (int h = -gmax.x; h <= gmax.x; ++h)
    for (int k = -gmax.y; k <= gmax.y; ++k)
      for (int l = -gmax.z; l <= gmax.z; ++l) {
        if (h == 0 && k == 0 && l == 0) continue;
        const Vec3d G{h * b.x, k * b.y, l * b.z};
        const double g2 = G.norm2();
        if (g2 > gcut2) continue;
        double re = 0, im = 0;
        for (int i = 0; i < n; ++i) {
          const double phase = G.dot(positions[i]);
          re += charges[i] * std::cos(phase);
          im += charges[i] * std::sin(phase);
        }
        e_recip += units::kTwoPi / (vol * g2) *
                   std::exp(-g2 / (4.0 * eta)) * (re * re + im * im);
      }

  // Self-energy and neutralizing-background corrections.
  const double e_self = -sqrt_eta / std::sqrt(units::kPi) * total_q2;
  const double e_background =
      -units::kPi / (2.0 * vol * eta) * total_q * total_q;

  return e_real + e_recip + e_self + e_background;
}

}  // namespace ls3df
