// Ewald summation for the ion-ion electrostatic energy of a periodic cell
// with a neutralizing background (the standard companion of the jellium
// G = 0 convention used by the Poisson solver and the pseudopotentials).
#pragma once

#include "atoms/structure.h"

namespace ls3df {

// Ion-ion energy (Hartree) with charges = valence charges of the species.
// eta (splitting parameter, Bohr^-2) is chosen automatically when <= 0.
double ewald_energy(const Structure& s, double eta = -1.0);

// Ewald energy of explicit point charges at the given Cartesian positions.
double ewald_energy(const Lattice& lat, const std::vector<Vec3d>& positions,
                    const std::vector<double>& charges, double eta = -1.0);

}  // namespace ls3df
