#include "poisson/sharded_poisson.h"

#include "common/constants.h"

namespace ls3df {

void apply_coulomb_kernel(DistFft3D& fft, const Lattice& lat) {
  for_each_pencil_g2(fft, lat, [](cplx& v, double g2) {
    if (g2 < 1e-12) {
      v = 0.0;
    } else {
      v *= units::kFourPi / g2;
    }
  });
}

void sharded_hartree(DistFft3D& fft, const ShardedFieldR& rho,
                     const Lattice& lat, ShardedFieldR& v_h) {
  fft.forward(rho);
  apply_coulomb_kernel(fft, lat);
  fft.inverse(v_h);
}

}  // namespace ls3df
