#include "poisson/poisson.h"

#include <cmath>

#include "common/constants.h"
#include "fft/plan_cache.h"
#include "grid/gvectors.h"

namespace ls3df {

HartreeResult solve_poisson(const FieldR& rho, const Lattice& lat) {
  const Vec3i shape = rho.shape();
  const Vec3d b = lat.reciprocal();
  const Fft3D& fft = fft_plan(shape);

  FieldC work(shape);
  for (std::size_t i = 0; i < rho.size(); ++i)
    work[i] = std::complex<double>(rho[i], 0.0);
  fft.forward(work.raw());

  // Multiply by the Coulomb kernel 4 pi / G^2; zero the G = 0 component
  // (jellium convention for neutral cells).
  for (int i1 = 0; i1 < shape.x; ++i1) {
    const double gx = GVectors::freq(i1, shape.x) * b.x;
    for (int i2 = 0; i2 < shape.y; ++i2) {
      const double gy = GVectors::freq(i2, shape.y) * b.y;
      for (int i3 = 0; i3 < shape.z; ++i3) {
        const double gz = GVectors::freq(i3, shape.z) * b.z;
        const double g2 = gx * gx + gy * gy + gz * gz;
        if (g2 < 1e-12) {
          work(i1, i2, i3) = 0.0;
        } else {
          work(i1, i2, i3) *= units::kFourPi / g2;
        }
      }
    }
  }
  fft.inverse(work.raw());

  HartreeResult out{FieldR(shape), 0.0};
  for (std::size_t i = 0; i < rho.size(); ++i)
    out.potential[i] = work[i].real();
  const double point_vol =
      lat.volume() / static_cast<double>(rho.size());
  double e = 0;
  for (std::size_t i = 0; i < rho.size(); ++i)
    e += rho[i] * out.potential[i];
  out.energy = 0.5 * e * point_vol;
  return out;
}

}  // namespace ls3df
