// Sharded GENPOT kernel: the global Poisson equation solved per-shard in
// G-space. The density arrives as x-slabs, DistFft3D moves it to
// y-pencils through one all-to-all transpose, each rank multiplies its
// pencils by the Coulomb kernel 4 pi / G^2 (G = 0 zeroed; neutral-cell
// jellium convention, exactly the dense solve_poisson arithmetic), and
// the inverse transform returns the Hartree potential as x-slabs. No
// rank ever holds more than global/N of the grid.
#pragma once

#include "fft/dist_fft3d.h"
#include "grid/lattice.h"
#include "grid/sharded_field.h"

namespace ls3df {

// Multiply the pencils currently held by `fft` (forward-transformed
// density) by 4 pi / G^2, zeroing G = 0 — bit-identical pointwise to the
// dense solve_poisson kernel loop.
void apply_coulomb_kernel(DistFft3D& fft, const Lattice& lat);

// V_H[rho] on x-slabs: forward, kernel, inverse. `v_h` must be shaped
// like `rho`.
void sharded_hartree(DistFft3D& fft, const ShardedFieldR& rho,
                     const Lattice& lat, ShardedFieldR& v_h);

}  // namespace ls3df
